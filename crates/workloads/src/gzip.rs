//! `gzip` stand-in: LZ77 window matching.
//!
//! SPEC's `gzip` spends its time hashing two-byte prefixes and extending
//! matches byte by byte. This kernel does the same over a repetitive
//! pseudo-text buffer: a 256-entry hash head table proposes a candidate
//! position, a byte-compare loop measures the match, and matches of length
//! ≥ 3 advance the cursor. The compare loop's exit branch is data
//! dependent, giving the moderate predictability Table 1 reports (93%).

use crate::util::XorShift32;
use popk_isa::builder::Builder;
use popk_isa::{Program, Reg};

/// Input buffer size in bytes.
pub const SIZE: u32 = 8192;
/// Hash head table entries.
pub const HEADS: u32 = 256;
/// Minimum useful match length.
pub const MIN_MATCH: u32 = 3;
/// Maximum match length.
pub const MAX_MATCH: u32 = 255;

const SEED: u32 = 0x677a_6970; // "gzip"

fn gen_input() -> Vec<u8> {
    // LZ-friendly data: mostly fresh random letters, with frequent
    // copy-backs of earlier substrings.
    let mut rng = XorShift32::new(SEED);
    let mut buf: Vec<u8> = Vec::with_capacity(SIZE as usize);
    while buf.len() < SIZE as usize {
        if buf.len() > 64 && rng.below(3) != 0 {
            let start = rng.below(buf.len() as u32 - 32) as usize;
            let len = (4 + rng.below(28)) as usize;
            for k in 0..len.min(SIZE as usize - buf.len()) {
                buf.push(buf[start + k]);
            }
        } else {
            for _ in 0..8 {
                if buf.len() < SIZE as usize {
                    buf.push(b'a' + rng.below(16) as u8);
                }
            }
        }
    }
    buf
}

#[inline]
fn hash2(b0: u8, b1: u8) -> u32 {
    ((b0 as u32).wrapping_mul(31).wrapping_add(b1 as u32)) & (HEADS - 1)
}

/// Build the kernel with `iters` outer iterations; each prints
/// (total match length, literal count).
pub fn build(iters: u32) -> Program {
    let input = gen_input();
    let mut b = Builder::new();
    let buf = b.data_bytes(&input);
    b.align_data(4);
    // Head table: position+1 of the last occurrence of each hash (0 = none).
    let heads = b.data_space((HEADS * 4) as usize);

    let (bufb, headb, pos, matched, lits, iter) = (
        Reg::gpr(16),
        Reg::gpr(17),
        Reg::gpr(18),
        Reg::gpr(19),
        Reg::gpr(20),
        Reg::gpr(8),
    );
    let (h, cand, len, t0, t1, t2, t3) = (
        Reg::gpr(21),
        Reg::gpr(22),
        Reg::gpr(23),
        Reg::gpr(9),
        Reg::gpr(10),
        Reg::gpr(11),
        Reg::gpr(12),
    );

    b.here("main");
    b.la(bufb, buf);
    b.la(headb, heads);
    b.li(iter, iters as i32);

    let outer = b.here("outer");
    // Clear the head table.
    b.li(t0, 0);
    let clear = b.here("clear");
    b.sll(t1, t0, 2);
    b.addu(t1, t1, headb);
    b.sw(Reg::ZERO, 0, t1);
    b.addiu(t0, t0, 1);
    b.li(t1, HEADS as i32);
    b.bne(t0, t1, clear);

    b.li(pos, 0);
    b.li(matched, 0);
    b.li(lits, 0);

    let scan = b.here("scan");
    let done = b.named("done");
    // while pos < SIZE - 2 (signed exact: pos stays small)
    b.addiu(t0, pos, -((SIZE - 2) as i16));
    b.bgez(t0, done);

    // h = (buf[pos]*31 + buf[pos+1]) & 255
    b.addu(t0, bufb, pos);
    b.lbu(t1, 0, t0);
    b.lbu(t2, 1, t0);
    b.sll(t3, t1, 5);
    b.subu(t3, t3, t1); // *31
    b.addu(t3, t3, t2);
    b.andi(h, t3, (HEADS - 1) as u16);

    // cand = head[h]; head[h] = pos + 1
    b.sll(t0, h, 2);
    b.addu(t0, t0, headb);
    b.lw(cand, 0, t0);
    b.addiu(t1, pos, 1);
    b.sw(t1, 0, t0);

    let literal = b.named("literal");
    b.beq(cand, Reg::ZERO, literal);
    b.addiu(cand, cand, -1); // candidate position

    // Extend the match: len = 0; while bounds ok and bytes equal: len++.
    b.li(len, 0);
    let extend = b.here("extend");
    let extend_done = b.named("extend_done");
    // pos + len < SIZE?
    b.addu(t0, pos, len);
    b.addiu(t2, t0, -(SIZE as i16));
    b.bgez(t2, extend_done);
    // len < MAX_MATCH?
    b.addiu(t2, len, -(MAX_MATCH as i16));
    b.bgez(t2, extend_done);
    // buf[cand+len] == buf[pos+len]?
    b.addu(t1, bufb, t0);
    b.lbu(t1, 0, t1);
    b.addu(t2, cand, len);
    b.addu(t2, t2, bufb);
    b.lbu(t2, 0, t2);
    b.bne(t1, t2, extend_done);
    b.addiu(len, len, 1);
    b.b(extend);
    {
        let l = b.named("extend_done");
        b.bind(l);
    }

    // if len >= MIN_MATCH: matched += len; pos += len; continue.
    b.li(t0, MIN_MATCH as i32);
    b.sltu(t1, len, t0);
    b.bne(t1, Reg::ZERO, literal);
    b.addu(matched, matched, len);
    b.addu(pos, pos, len);
    b.b(scan);

    {
        let l = b.named("literal");
        b.bind(l);
    }
    b.addiu(lits, lits, 1);
    b.addiu(pos, pos, 1);
    b.b(scan);

    {
        let l = b.named("done");
        b.bind(l);
    }
    b.print_int(matched);
    b.print_int(lits);
    b.addiu(iter, iter, -1);
    b.bne(iter, Reg::ZERO, outer);
    b.exit();
    b.finish()
}

/// The Rust reference model.
pub fn reference(iters: u32) -> Vec<i32> {
    let buf = gen_input();
    let mut out = Vec::new();
    for _ in 0..iters {
        let mut heads = vec![0u32; HEADS as usize];
        let mut pos = 0usize;
        let (mut matched, mut lits) = (0u32, 0u32);
        while pos < (SIZE - 2) as usize {
            let h = hash2(buf[pos], buf[pos + 1]) as usize;
            let cand = heads[h];
            heads[h] = pos as u32 + 1;
            if cand != 0 {
                let c = (cand - 1) as usize;
                let mut len = 0usize;
                while pos + len < SIZE as usize
                    && len < MAX_MATCH as usize
                    && buf[c + len] == buf[pos + len]
                {
                    len += 1;
                }
                if len >= MIN_MATCH as usize {
                    matched += len as u32;
                    pos += len;
                    continue;
                }
            }
            lits += 1;
            pos += 1;
        }
        out.push(matched as i32);
        out.push(lits as i32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_outputs;

    #[test]
    fn matches_reference() {
        let p = build(2);
        assert_eq!(run_outputs(&p, 5_000_000), reference(2));
    }

    #[test]
    fn input_is_compressible() {
        let r = reference(1);
        let (matched, lits) = (r[0], r[1]);
        assert!(
            matched > lits,
            "data should be LZ-friendly: {matched} vs {lits}"
        );
    }
}
