//! `vortex` stand-in: object database with indirect handler dispatch.
//!
//! SPEC `vortex` is an object-oriented database: hash lookups into chained
//! object records followed by virtual dispatch on the object's type. This
//! kernel walks bucket chains for a stream of keys and, on each hit,
//! calls the record's type handler through a function-pointer table with
//! `jalr` — exercising the RAS/BTB paths plus dependent pointer loads.

use crate::util::XorShift32;
use popk_isa::builder::Builder;
use popk_isa::{Program, Reg, TEXT_BASE};

/// Records in the database.
pub const RECORDS: u32 = 1024;
/// Hash buckets.
pub const BUCKETS: u32 = 64;
/// Lookups per outer iteration.
pub const LOOKUPS: u32 = 1024;
/// Handler (type) count.
pub const TYPES: u32 = 4;

const SEED: u32 = 0x766f_7274; // "vort"

/// Record layout: type, key, val, next (byte offsets).
const TYPE_OFF: i16 = 0;
const KEY_OFF: i16 = 4;
const VAL_OFF: i16 = 8;
const NEXT_OFF: i16 = 12;

struct Db {
    types: Vec<u32>,
    keys: Vec<u32>,
    lookups: Vec<u32>,
}

fn gen_db() -> Db {
    let mut rng = XorShift32::new(SEED);
    // Unique keys so chain search is unambiguous.
    let mut keys: Vec<u32> = (0..RECORDS).map(|k| k * 7 + 3).collect();
    for i in (1..keys.len()).rev() {
        let j = rng.below(i as u32 + 1) as usize;
        keys.swap(i, j);
    }
    let types: Vec<u32> = (0..RECORDS).map(|_| rng.below(TYPES)).collect();
    let lookups: Vec<u32> = (0..LOOKUPS)
        .map(|_| {
            if rng.below(8) == 0 {
                // A key that is never present (miss path).
                1_000_000 + rng.below(1000)
            } else {
                keys[rng.below(RECORDS) as usize]
            }
        })
        .collect();
    Db {
        types,
        keys,
        lookups,
    }
}

/// Handler semantics, shared by assembly and reference:
/// returns the new `val` and the per-call contribution.
fn handler(ty: u32, val: u32, key: u32) -> (u32, u32) {
    match ty {
        0 => (val.wrapping_add(1), val.wrapping_add(1)),
        1 => (val ^ key, val ^ key),
        2 => (val.wrapping_add(key >> 3), val.wrapping_add(key >> 3)),
        _ => (val.wrapping_sub(1), val.wrapping_sub(1)),
    }
}

/// Build the kernel; each iteration prints (found count, handler sum).
pub fn build(iters: u32) -> Program {
    let db = gen_db();
    let mut b = Builder::new();

    // Records: chains threaded through buckets by key hash.
    let mut heads = vec![0u32; BUCKETS as usize]; // record addr or 0
    let lookups = b.data_words(&db.lookups);
    let htab = b.data_space((TYPES * 4) as usize); // filled at runtime
    b.align_data(16);
    let recs = b.data_space((RECORDS * 16) as usize);
    // Thread chains now that `recs` is known.
    let mut rec_words = vec![0u32; (RECORDS * 4) as usize];
    for r in 0..RECORDS as usize {
        let key = db.keys[r];
        let bucket = (key % BUCKETS) as usize;
        let addr = recs + (r as u32) * 16;
        rec_words[r * 4] = db.types[r];
        rec_words[r * 4 + 1] = key;
        rec_words[r * 4 + 2] = 0; // val
        rec_words[r * 4 + 3] = heads[bucket];
        heads[bucket] = addr;
    }
    let bkts = b.data_words(&heads);

    // ---- text: jump over the handlers to main -----------------------
    let main_l = b.named("main");
    b.j(main_l);

    // Handlers: a0 = record address, v1 = key; return v0 = contribution.
    // Handler i's text address is recorded for the dispatch table.
    let mut handler_addrs = [0u32; TYPES as usize];
    // h0: val += 1
    handler_addrs[0] = TEXT_BASE + 4 * b.len() as u32;
    b.lw(Reg::gpr(9), VAL_OFF, Reg::A0);
    b.addiu(Reg::gpr(9), Reg::gpr(9), 1);
    b.sw(Reg::gpr(9), VAL_OFF, Reg::A0);
    b.mov(Reg::V0, Reg::gpr(9));
    b.jr(Reg::RA);
    // h1: val ^= key
    handler_addrs[1] = TEXT_BASE + 4 * b.len() as u32;
    b.lw(Reg::gpr(9), VAL_OFF, Reg::A0);
    b.xor(Reg::gpr(9), Reg::gpr(9), Reg::V1);
    b.sw(Reg::gpr(9), VAL_OFF, Reg::A0);
    b.mov(Reg::V0, Reg::gpr(9));
    b.jr(Reg::RA);
    // h2: val += key >> 3
    handler_addrs[2] = TEXT_BASE + 4 * b.len() as u32;
    b.lw(Reg::gpr(9), VAL_OFF, Reg::A0);
    b.srl(Reg::gpr(10), Reg::V1, 3);
    b.addu(Reg::gpr(9), Reg::gpr(9), Reg::gpr(10));
    b.sw(Reg::gpr(9), VAL_OFF, Reg::A0);
    b.mov(Reg::V0, Reg::gpr(9));
    b.jr(Reg::RA);
    // h3: val -= 1
    handler_addrs[3] = TEXT_BASE + 4 * b.len() as u32;
    b.lw(Reg::gpr(9), VAL_OFF, Reg::A0);
    b.addiu(Reg::gpr(9), Reg::gpr(9), -1);
    b.sw(Reg::gpr(9), VAL_OFF, Reg::A0);
    b.mov(Reg::V0, Reg::gpr(9));
    b.jr(Reg::RA);

    let (lkb, bkb, htb, li_, found, sum, iter) = (
        Reg::gpr(16),
        Reg::gpr(17),
        Reg::gpr(18),
        Reg::gpr(19),
        Reg::gpr(20),
        Reg::gpr(21),
        Reg::gpr(8),
    );
    let (key, node, t0) = (Reg::gpr(22), Reg::gpr(23), Reg::gpr(9));

    b.bind(main_l);
    b.la(lkb, lookups);
    b.la(bkb, bkts);
    b.la(htb, htab);
    // Fill the dispatch table with the handler addresses.
    for (i, &addr) in handler_addrs.iter().enumerate() {
        b.li(t0, addr as i32);
        b.sw(t0, (i * 4) as i16, htb);
    }
    b.li(iter, iters as i32);

    let outer = b.here("outer");
    b.li(li_, 0);
    b.li(found, 0);
    b.li(sum, 0);

    let look = b.here("look");
    let not_found = b.named("not_found");
    let hit = b.named("hit");
    b.sll(t0, li_, 2);
    b.addu(t0, t0, lkb);
    b.lw(key, 0, t0);

    // bucket head: key % BUCKETS == key & 63
    b.andi(t0, key, (BUCKETS - 1) as u16);
    b.sll(t0, t0, 2);
    b.addu(t0, t0, bkb);
    b.lw(node, 0, t0);

    let walk = b.here("walk");
    b.beq(node, Reg::ZERO, not_found);
    b.lw(t0, KEY_OFF, node);
    b.beq(t0, key, hit);
    b.lw(node, NEXT_OFF, node);
    b.b(walk);

    {
        let l = b.named("hit");
        b.bind(l);
    }
    b.addiu(found, found, 1);
    // Dispatch: v0 <- handlers[type](a0 = node, v1 = key)
    b.lw(t0, TYPE_OFF, node);
    b.sll(t0, t0, 2);
    b.addu(t0, t0, htb);
    b.lw(t0, 0, t0);
    b.mov(Reg::A0, node);
    b.mov(Reg::V1, key);
    b.jalr(Reg::RA, t0);
    b.addu(sum, sum, Reg::V0);

    {
        let l = b.named("not_found");
        b.bind(l);
    }
    b.addiu(li_, li_, 1);
    b.li(t0, LOOKUPS as i32);
    b.bne(li_, t0, look);

    b.print_int(found);
    b.print_int(sum);
    b.addiu(iter, iter, -1);
    b.bne(iter, Reg::ZERO, outer);
    b.exit();

    // Record data must be loaded into the data segment: rewrite the
    // reserved space with the initialized words.
    let mut program = b.finish();
    let rec_off = (recs - popk_isa::DATA_BASE) as usize;
    for (i, w) in rec_words.iter().enumerate() {
        program.data[rec_off + i * 4..rec_off + i * 4 + 4].copy_from_slice(&w.to_le_bytes());
    }
    program
}

/// The Rust reference model.
pub fn reference(iters: u32) -> Vec<i32> {
    let db = gen_db();
    let mut vals = vec![0u32; RECORDS as usize];
    // Bucket chains: most-recently inserted first (mirrors the builder).
    let mut chains: Vec<Vec<usize>> = vec![Vec::new(); BUCKETS as usize];
    for r in 0..RECORDS as usize {
        chains[(db.keys[r] % BUCKETS) as usize].insert(0, r);
    }
    let mut out = Vec::new();
    for _ in 0..iters {
        let (mut found, mut sum) = (0u32, 0u32);
        for &key in &db.lookups {
            let chain = &chains[(key % BUCKETS) as usize];
            if let Some(&r) = chain.iter().find(|&&r| db.keys[r] == key) {
                found += 1;
                let (nv, contrib) = handler(db.types[r], vals[r], key);
                vals[r] = nv;
                sum = sum.wrapping_add(contrib);
            }
        }
        out.push(found as i32);
        out.push(sum as i32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_outputs;

    #[test]
    fn matches_reference() {
        let p = build(3);
        assert_eq!(run_outputs(&p, 2_000_000), reference(3));
    }

    #[test]
    fn has_hits_and_misses() {
        let r = reference(1);
        assert!(
            r[0] > 0 && (r[0] as u32) < LOOKUPS,
            "lookup mix degenerate: {r:?}"
        );
    }
}
