//! `bzip` stand-in: move-to-front + run-length coding.
//!
//! SPEC's `bzip2` pipeline ends with an MTF transform and RLE of the
//! resulting zero runs. This kernel codes a skewed byte stream through a
//! 256-entry MTF list: a linear *search* loop finds each symbol's current
//! rank (an early-exit, data-dependent branch) and a *shift* loop rotates
//! the prefix down (a predictable counted branch) — the short-loop-heavy
//! character the paper reports for bzip.

use crate::util::XorShift32;
use popk_isa::builder::Builder;
use popk_isa::{Program, Reg};

/// Input stream length in bytes.
pub const SIZE: u32 = 4096;
/// Alphabet size (MTF table entries).
pub const ALPHA: u32 = 256;

const SEED: u32 = 0x627a_6970; // "bzip"

fn gen_input() -> Vec<u8> {
    // Skewed distribution: small symbols dominate, so MTF ranks stay low
    // and zero-runs appear (what RLE then counts).
    let mut rng = XorShift32::new(SEED);
    let mut buf = Vec::with_capacity(SIZE as usize);
    let mut prev = 0u8;
    for _ in 0..SIZE {
        let b = if rng.below(3) == 0 {
            prev // immediate repeat → MTF outputs 0
        } else if rng.below(4) != 0 {
            (rng.below(8)) as u8
        } else {
            rng.below(ALPHA) as u8
        };
        buf.push(b);
        prev = b;
    }
    buf
}

/// Build the kernel; each iteration prints (sum of MTF ranks, zero-run
/// output count).
pub fn build(iters: u32) -> Program {
    let input = gen_input();
    let mut b = Builder::new();
    let buf = b.data_bytes(&input);
    b.align_data(4);
    let table = b.data_space(ALPHA as usize);

    let (bufb, tabb, pos, ranks, zeros, iter) = (
        Reg::gpr(16),
        Reg::gpr(17),
        Reg::gpr(18),
        Reg::gpr(19),
        Reg::gpr(20),
        Reg::gpr(8),
    );
    let (sym, j, t0, t1, t2) = (
        Reg::gpr(21),
        Reg::gpr(22),
        Reg::gpr(9),
        Reg::gpr(10),
        Reg::gpr(11),
    );

    b.here("main");
    b.la(bufb, buf);
    b.la(tabb, table);
    b.li(iter, iters as i32);

    let outer = b.here("outer");
    // Initialize the MTF table to the identity permutation.
    b.li(t0, 0);
    let init = b.here("init");
    b.addu(t1, tabb, t0);
    b.sb(t0, 0, t1);
    b.addiu(t0, t0, 1);
    b.li(t1, ALPHA as i32);
    b.bne(t0, t1, init);

    b.li(pos, 0);
    b.li(ranks, 0);
    b.li(zeros, 0);

    let code = b.here("code");
    b.addu(t0, bufb, pos);
    b.lbu(sym, 0, t0);

    // Search: j = 0; while table[j] != sym: j++.
    b.li(j, 0);
    let search = b.here("search");
    b.addu(t0, tabb, j);
    b.lbu(t1, 0, t0);
    let found = b.named("found");
    b.beq(t1, sym, found);
    b.addiu(j, j, 1);
    b.b(search);
    {
        let l = b.named("found");
        b.bind(l);
    }
    b.addu(ranks, ranks, j);
    // Zero-rank outputs feed the RLE stage.
    let nonzero = b.label();
    b.bne(j, Reg::ZERO, nonzero);
    b.addiu(zeros, zeros, 1);
    b.bind(nonzero);

    // Shift: for k = j down to 1: table[k] = table[k-1]; table[0] = sym.
    let shift_done = b.named("shift_done");
    b.mov(t0, j);
    let shift = b.here("shift");
    b.blez(t0, shift_done);
    b.addu(t1, tabb, t0);
    b.lbu(t2, -1, t1);
    b.sb(t2, 0, t1);
    b.addiu(t0, t0, -1);
    b.b(shift);
    {
        let l = b.named("shift_done");
        b.bind(l);
    }
    b.sb(sym, 0, tabb);

    b.addiu(pos, pos, 1);
    b.li(t0, SIZE as i32);
    b.bne(pos, t0, code);

    b.print_int(ranks);
    b.print_int(zeros);
    b.addiu(iter, iter, -1);
    b.bne(iter, Reg::ZERO, outer);
    b.exit();
    b.finish()
}

/// The Rust reference model.
pub fn reference(iters: u32) -> Vec<i32> {
    let buf = gen_input();
    let mut out = Vec::new();
    for _ in 0..iters {
        let mut table: Vec<u8> = (0..=255).collect();
        let (mut ranks, mut zeros) = (0u32, 0u32);
        for &sym in &buf {
            let j = table
                .iter()
                .position(|&t| t == sym)
                .expect("table permutes every byte value");
            ranks += j as u32;
            if j == 0 {
                zeros += 1;
            }
            table.copy_within(0..j, 1);
            table[0] = sym;
        }
        out.push(ranks as i32);
        out.push(zeros as i32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_outputs;

    #[test]
    fn matches_reference() {
        let p = build(2);
        assert_eq!(run_outputs(&p, 10_000_000), reference(2));
    }

    #[test]
    fn skew_produces_zero_runs() {
        let r = reference(1);
        assert!(
            r[1] > (SIZE / 10) as i32,
            "expected many zero ranks, got {}",
            r[1]
        );
    }

    #[test]
    fn iterations_are_deterministic() {
        let r = reference(2);
        assert_eq!(r[0], r[2]);
        assert_eq!(r[1], r[3]);
    }
}
