//! `ijpeg` stand-in: 8-point integer block transform.
//!
//! Image codecs stream pixel blocks through separable integer transforms:
//! long, perfectly predictable loops of loads, adds/subtracts, small
//! constant multiplies and shifts — the high-IPC, 93%-accuracy profile
//! Table 1 gives ijpeg. This kernel applies a butterfly + scaled-rotation
//! pass to every 8-byte vector of a 4 KiB image, then a second pass with
//! different constants over the coefficient magnitudes (a stand-in for
//! the column pass + quantization).

use crate::util::XorShift32;
use popk_isa::builder::Builder;
use popk_isa::{Program, Reg};

/// Image bytes (must be a multiple of 8).
pub const SIZE: u32 = 4096;
/// First-pass rotation constants (Q8 fixed point).
pub const C1: i32 = 181; // ~cos(pi/4) * 256
/// Second-pass constant.
pub const C2: i32 = 98; //  ~sin(3pi/8) * 256 / 2.56

const SEED: u32 = 0x6a70_6567; // "jpeg"

fn gen_image() -> Vec<u8> {
    // Smooth-ish data: a random walk, like natural image rows.
    let mut rng = XorShift32::new(SEED);
    let mut v = 128i32;
    (0..SIZE)
        .map(|_| {
            v += rng.below(17) as i32 - 8;
            v = v.clamp(0, 255);
            v as u8
        })
        .collect()
}

/// One 8-point pass in the reference model (wrapping i32 arithmetic,
/// mirrored exactly by the assembly).
fn transform8(x: &[i32; 8], c: i32) -> [i32; 8] {
    let mut y = [0i32; 8];
    for i in 0..4 {
        let s = x[i].wrapping_add(x[7 - i]);
        let d = x[i].wrapping_sub(x[7 - i]);
        y[i] = s.wrapping_mul(c) >> 8;
        y[i + 4] = d.wrapping_mul(c) >> 8;
    }
    y
}

/// Build the kernel; each iteration prints (pass-1 checksum, pass-2
/// checksum).
pub fn build(iters: u32) -> Program {
    let image = gen_image();
    let mut b = Builder::new();
    let img = b.data_bytes(&image);
    b.align_data(4);
    // Scratch vector of 8 words for the loaded block and 8 for the output.
    let xbuf = b.data_space(32);
    let ybuf = b.data_space(32);

    let (imgb, xb, yb, blk, sum1, sum2, iter) = (
        Reg::gpr(16),
        Reg::gpr(17),
        Reg::gpr(18),
        Reg::gpr(19),
        Reg::gpr(20),
        Reg::gpr(21),
        Reg::gpr(8),
    );
    let (i, t0, t1, t2, t3, creg) = (
        Reg::gpr(22),
        Reg::gpr(9),
        Reg::gpr(10),
        Reg::gpr(11),
        Reg::gpr(12),
        Reg::gpr(23),
    );

    b.here("main");
    b.la(imgb, img);
    b.la(xb, xbuf);
    b.la(yb, ybuf);
    b.li(iter, iters as i32);

    let outer = b.here("outer");
    b.li(sum1, 0);
    b.li(sum2, 0);
    b.li(blk, 0);

    let block = b.here("block");
    // Load 8 bytes into the x scratch as words.
    b.li(i, 0);
    let load = b.here("load");
    b.addu(t0, blk, i);
    b.addu(t0, t0, imgb);
    b.lbu(t1, 0, t0);
    b.sll(t0, i, 2);
    b.addu(t0, t0, xb);
    b.sw(t1, 0, t0);
    b.addiu(i, i, 1);
    b.addiu(t0, i, -8);
    b.bltz(t0, load);

    // ---- pass 1: butterflies with constant C1, results into ybuf -----
    b.li(creg, C1);
    b.li(i, 0);
    let p1 = b.here("p1");
    // t1 = x[i]; t2 = x[7-i]
    b.sll(t0, i, 2);
    b.addu(t0, t0, xb);
    b.lw(t1, 0, t0);
    b.li(t2, 7);
    b.subu(t2, t2, i);
    b.sll(t2, t2, 2);
    b.addu(t2, t2, xb);
    b.lw(t2, 0, t2);
    // s = t1 + t2 → y[i] = (s*C1)>>8 ; d = t1 - t2 → y[i+4] = (d*C1)>>8
    b.addu(t3, t1, t2);
    b.mult(t3, creg);
    b.mflo(t3);
    b.sra(t3, t3, 8);
    b.sll(t0, i, 2);
    b.addu(t0, t0, yb);
    b.sw(t3, 0, t0);
    b.subu(t3, t1, t2);
    b.mult(t3, creg);
    b.mflo(t3);
    b.sra(t3, t3, 8);
    b.sw(t3, 16, t0); // y[i+4] is 4 words past y[i]
    b.addiu(i, i, 1);
    b.addiu(t0, i, -4);
    b.bltz(t0, p1);

    // Accumulate pass-1 checksum over y.
    b.li(i, 0);
    let acc1 = b.here("acc1");
    b.sll(t0, i, 2);
    b.addu(t0, t0, yb);
    b.lw(t1, 0, t0);
    b.addu(sum1, sum1, t1);
    b.addiu(i, i, 1);
    b.addiu(t0, i, -8);
    b.bltz(t0, acc1);

    // ---- pass 2: same butterfly shape over y with C2, into xbuf -------
    b.li(creg, C2);
    b.li(i, 0);
    let p2 = b.here("p2");
    b.sll(t0, i, 2);
    b.addu(t0, t0, yb);
    b.lw(t1, 0, t0);
    b.li(t2, 7);
    b.subu(t2, t2, i);
    b.sll(t2, t2, 2);
    b.addu(t2, t2, yb);
    b.lw(t2, 0, t2);
    b.addu(t3, t1, t2);
    b.mult(t3, creg);
    b.mflo(t3);
    b.sra(t3, t3, 8);
    b.sll(t0, i, 2);
    b.addu(t0, t0, xb);
    b.sw(t3, 0, t0);
    b.subu(t3, t1, t2);
    b.mult(t3, creg);
    b.mflo(t3);
    b.sra(t3, t3, 8);
    b.sw(t3, 16, t0);
    b.addiu(i, i, 1);
    b.addiu(t0, i, -4);
    b.bltz(t0, p2);

    b.li(i, 0);
    let acc2 = b.here("acc2");
    b.sll(t0, i, 2);
    b.addu(t0, t0, xb);
    b.lw(t1, 0, t0);
    b.addu(sum2, sum2, t1);
    b.addiu(i, i, 1);
    b.addiu(t0, i, -8);
    b.bltz(t0, acc2);

    b.addiu(blk, blk, 8);
    b.li(t0, SIZE as i32);
    b.bne(blk, t0, block);

    b.print_int(sum1);
    b.print_int(sum2);
    b.addiu(iter, iter, -1);
    b.bne(iter, Reg::ZERO, outer);
    b.exit();
    b.finish()
}

/// The Rust reference model.
pub fn reference(iters: u32) -> Vec<i32> {
    let image = gen_image();
    let mut out = Vec::new();
    for _ in 0..iters {
        let (mut sum1, mut sum2) = (0i32, 0i32);
        for blk in image.chunks_exact(8) {
            let mut x = [0i32; 8];
            for (i, &px) in blk.iter().enumerate() {
                x[i] = px as i32;
            }
            let y = transform8(&x, C1);
            for v in y {
                sum1 = sum1.wrapping_add(v);
            }
            let z = transform8(&y, C2);
            for v in z {
                sum2 = sum2.wrapping_add(v);
            }
        }
        out.push(sum1);
        out.push(sum2);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_outputs;

    #[test]
    fn matches_reference() {
        let p = build(2);
        assert_eq!(run_outputs(&p, 5_000_000), reference(2));
    }

    #[test]
    fn transform_is_linear_in_scale() {
        let x = [10, 20, 30, 40, 50, 60, 70, 80];
        let y = transform8(&x, 256); // identity-scale butterflies
        assert_eq!(y[0], 10 + 80);
        assert_eq!(y[4], 10 - 80);
    }
}
