//! `mcf` stand-in: pointer chasing over a large arc array.
//!
//! SPEC's `mcf` runs network simplex over arc/node structures far larger
//! than L1, making it memory-latency bound with highly predictable
//! branches (Table 1 reports 98% accuracy and the suite's lowest IPC).
//! This kernel walks a random single-cycle permutation over a 256 KiB node
//! array (16 KiB nodes × 16 B), accumulating costs and conditionally
//! updating a flow field — serial dependent loads with a data-dependent
//! but well-predicted store.

use crate::util::XorShift32;
use popk_isa::builder::Builder;
use popk_isa::{Program, Reg};

/// Nodes in the arc array (× 16 B = 256 KiB working set, 4× the L1).
pub const NODES: u32 = 16 * 1024;
/// Pointer-chase steps per outer iteration.
pub const STEPS: u32 = 4096;

const SEED: u32 = 0x006d_6366; // "mcf"

/// Node field offsets (16-byte records: next, cost, flow, pad).
const NEXT_OFF: i16 = 0;
const COST_OFF: i16 = 4;
const FLOW_OFF: i16 = 8;

fn gen_nodes() -> (Vec<u32>, Vec<u32>) {
    let mut rng = XorShift32::new(SEED);
    // A single-cycle permutation: shuffle 0..N, then chain the order.
    let n = NODES as usize;
    let mut order: Vec<u32> = (0..NODES).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u32 + 1) as usize;
        order.swap(i, j);
    }
    let mut next = vec![0u32; n];
    for i in 0..n {
        next[order[i] as usize] = order[(i + 1) % n];
    }
    // Costs are mostly even so the flow-update branch is strongly biased
    // not-taken — mcf's branches are the suite's most predictable
    // (Table 1: 98%).
    let costs: Vec<u32> = (0..n)
        .map(|_| (rng.below(500) * 2) + u32::from(rng.below(16) == 0))
        .collect();
    (next, costs)
}

/// Build the kernel with `iters` outer iterations (one checksum printed
/// per iteration).
pub fn build(iters: u32) -> Program {
    let (next, costs) = gen_nodes();
    let mut b = Builder::new();

    // Data segment: interleaved 16-byte node records.
    let mut words = Vec::with_capacity(NODES as usize * 4);
    for i in 0..NODES as usize {
        words.push(next[i]);
        words.push(costs[i]);
        words.push(0); // flow
        words.push(0); // pad
    }
    let nodes = b.data_words(&words);

    let (base, idx, sum, steps, addr, cost, nxt, flow, tmp, iter) = (
        Reg::gpr(16),
        Reg::gpr(17),
        Reg::gpr(18),
        Reg::gpr(19),
        Reg::gpr(20),
        Reg::gpr(21),
        Reg::gpr(22),
        Reg::gpr(23),
        Reg::gpr(10),
        Reg::gpr(8),
    );

    b.here("main");
    b.la(base, nodes);
    b.li(iter, iters as i32);

    let outer = b.here("outer");
    b.li(idx, 0);
    b.li(sum, 0);
    b.li(steps, STEPS as i32);

    let step = b.here("step");
    b.sll(addr, idx, 4);
    b.addu(addr, addr, base);
    b.lw(nxt, NEXT_OFF, addr);
    b.lw(cost, COST_OFF, addr);
    b.lw(flow, FLOW_OFF, addr);
    b.addu(sum, sum, cost);
    b.addu(sum, sum, flow);
    b.andi(tmp, cost, 1);
    let skip = b.label();
    b.beq(tmp, Reg::ZERO, skip);
    b.addiu(flow, flow, 1);
    b.sw(flow, FLOW_OFF, addr);
    b.bind(skip);
    b.mov(idx, nxt);
    b.addiu(steps, steps, -1);
    b.bgtz(steps, step);

    // Print the iteration checksum.
    b.print_int(sum);
    b.addiu(iter, iter, -1);
    b.bne(iter, Reg::ZERO, outer);
    b.exit();
    b.finish()
}

/// The Rust reference model: the checksums `build(iters)` must print.
pub fn reference(iters: u32) -> Vec<i32> {
    let (next, costs) = gen_nodes();
    let mut flow = vec![0u32; NODES as usize];
    let mut out = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let mut idx = 0usize;
        let mut sum = 0u32;
        for _ in 0..STEPS {
            let c = costs[idx];
            sum = sum.wrapping_add(c).wrapping_add(flow[idx]);
            if c & 1 != 0 {
                flow[idx] += 1;
            }
            idx = next[idx] as usize;
        }
        out.push(sum as i32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_outputs;

    #[test]
    fn matches_reference() {
        let p = build(3);
        assert_eq!(run_outputs(&p, 1_000_000), reference(3));
    }

    #[test]
    fn permutation_is_single_cycle() {
        let (next, _) = gen_nodes();
        let mut seen = vec![false; NODES as usize];
        let mut idx = 0usize;
        for _ in 0..NODES {
            assert!(!seen[idx], "cycle shorter than N");
            seen[idx] = true;
            idx = next[idx] as usize;
        }
        assert_eq!(idx, 0, "walk must return to the start");
    }

    #[test]
    fn iterations_differ() {
        // Flow updates persist, so successive checksums must not all be
        // equal (guards against accidentally dead flow accumulation).
        let r = reference(3);
        assert!(r[0] != r[1] || r[1] != r[2]);
    }
}
