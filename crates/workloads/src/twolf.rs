//! `twolf` stand-in: annealing-style swap accept/reject.
//!
//! Placement-by-annealing evaluates a stream of candidate cell swaps: a
//! Manhattan-distance cost is computed with multiplies and branchy
//! absolute values, then compared against a threshold — the accept/reject
//! branch follows essentially random data, giving twolf's middling branch
//! accuracy. Accepted swaps store back, mutating future costs.

use crate::util::XorShift32;
use popk_isa::builder::Builder;
use popk_isa::{Program, Reg};

/// Number of placed cells.
pub const CELLS: u32 = 1024;
/// Swap proposals per outer iteration.
pub const PROPOSALS: u32 = 2048;

const SEED: u32 = 0x7477_6f6c; // "twol"

fn gen_layout() -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut rng = XorShift32::new(SEED);
    let xs: Vec<u32> = (0..CELLS).map(|_| rng.below(256)).collect();
    let ys: Vec<u32> = (0..CELLS).map(|_| rng.below(256)).collect();
    // Proposals packed as (i << 20) | (j << 8) | threshold. Thresholds are
    // kept low so the accept branch is biased toward reject (~85%),
    // matching twolf's Table 1 predictability.
    let props: Vec<u32> = (0..PROPOSALS)
        .map(|_| {
            let i = rng.below(CELLS);
            let j = rng.below(CELLS);
            let thr = rng.below(48);
            (i << 20) | (j << 8) | thr
        })
        .collect();
    (xs, ys, props)
}

/// Build the kernel; each iteration prints (accepted swaps, accumulated
/// cost).
pub fn build(iters: u32) -> Program {
    let (xs, ys, props) = gen_layout();
    let mut b = Builder::new();
    let xsb = b.data_words(&xs);
    let ysb = b.data_words(&ys);
    let prb = b.data_words(&props);

    let (xb, yb, pb, pi, accepted, cost_acc, iter) = (
        Reg::gpr(16),
        Reg::gpr(17),
        Reg::gpr(18),
        Reg::gpr(19),
        Reg::gpr(20),
        Reg::gpr(21),
        Reg::gpr(8),
    );
    let (i, j, thr, xi, xj, yi, yj, t0, t1, cost) = (
        Reg::gpr(22),
        Reg::gpr(23),
        Reg::gpr(24),
        Reg::gpr(25),
        Reg::gpr(26),
        Reg::gpr(27),
        Reg::gpr(28),
        Reg::gpr(9),
        Reg::gpr(10),
        Reg::gpr(11),
    );

    b.here("main");
    b.la(xb, xsb);
    b.la(yb, ysb);
    b.la(pb, prb);
    b.li(iter, iters as i32);

    let outer = b.here("outer");
    b.li(pi, 0);
    b.li(accepted, 0);
    b.li(cost_acc, 0);

    let prop = b.here("prop");
    let reject = b.named("reject");
    b.sll(t0, pi, 2);
    b.addu(t0, t0, pb);
    b.lw(t1, 0, t0);
    b.srl(i, t1, 20);
    b.srl(j, t1, 8);
    b.andi(j, j, 0xfff);
    b.andi(thr, t1, 0xff);

    // Load coordinates.
    b.sll(t0, i, 2);
    b.addu(t0, t0, xb);
    b.lw(xi, 0, t0);
    b.sll(t0, j, 2);
    b.addu(t0, t0, xb);
    b.lw(xj, 0, t0);
    b.sll(t0, i, 2);
    b.addu(t0, t0, yb);
    b.lw(yi, 0, t0);
    b.sll(t0, j, 2);
    b.addu(t0, t0, yb);
    b.lw(yj, 0, t0);

    // cost = |xi-xj| + |yi-yj| (branchless abs via sign-mask, as real
    // placement codes compile), then scaled by a small data-dependent
    // weight via mult. Keeping abs branch-free leaves the accept/reject
    // compare as twolf's dominant hard branch.
    let (sx, sy) = (Reg::gpr(12), Reg::gpr(13));
    b.subu(t0, xi, xj);
    b.sra(sx, t0, 31);
    b.xor(t0, t0, sx);
    b.subu(t0, t0, sx);
    b.subu(t1, yi, yj);
    b.sra(sy, t1, 31);
    b.xor(t1, t1, sy);
    b.subu(t1, t1, sy);
    b.addu(cost, t0, t1);
    // weight = ((i + j) & 7) + 1
    b.addu(t0, i, j);
    b.andi(t0, t0, 7);
    b.addiu(t0, t0, 1);
    b.mult(cost, t0);
    b.mflo(cost);
    b.srl(cost, cost, 3);
    b.addu(cost_acc, cost_acc, cost);

    // Accept when cost < threshold: `sltu` + `beq`, the idiomatic
    // MIPS compare. The mispredicting direction tests a 0/1 operand, so
    // most twolf mispredicts are provable from bit 0 (Fig. 6).
    b.sltu(t0, cost, thr);
    b.beq(t0, Reg::ZERO, reject);
    b.sll(t0, i, 2);
    b.addu(t0, t0, xb);
    b.sw(xj, 0, t0);
    b.sll(t1, j, 2);
    b.addu(t1, t1, xb);
    b.sw(xi, 0, t1);
    b.sll(t0, i, 2);
    b.addu(t0, t0, yb);
    b.sw(yj, 0, t0);
    b.sll(t1, j, 2);
    b.addu(t1, t1, yb);
    b.sw(yi, 0, t1);
    b.addiu(accepted, accepted, 1);

    {
        let l = b.named("reject");
        b.bind(l);
    }
    b.addiu(pi, pi, 1);
    b.addiu(t0, pi, -(PROPOSALS as i16));
    b.bltz(t0, prop);

    b.print_int(accepted);
    b.print_int(cost_acc);
    b.addiu(iter, iter, -1);
    b.bne(iter, Reg::ZERO, outer);
    b.exit();
    b.finish()
}

/// The Rust reference model.
pub fn reference(iters: u32) -> Vec<i32> {
    let (mut xs, mut ys, props) = gen_layout();
    let mut out = Vec::new();
    for _ in 0..iters {
        let (mut accepted, mut cost_acc) = (0u32, 0u32);
        for &p in &props {
            let i = (p >> 20) as usize;
            let j = ((p >> 8) & 0xfff) as usize;
            let thr = p & 0xff;
            let dx = (xs[i] as i32 - xs[j] as i32).unsigned_abs();
            let dy = (ys[i] as i32 - ys[j] as i32).unsigned_abs();
            let weight = ((i + j) as u32 & 7) + 1;
            let cost = (dx + dy).wrapping_mul(weight) >> 3;
            cost_acc = cost_acc.wrapping_add(cost);
            if cost < thr {
                xs.swap(i, j);
                ys.swap(i, j);
                accepted += 1;
            }
        }
        out.push(accepted as i32);
        out.push(cost_acc as i32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_outputs;

    #[test]
    fn matches_reference() {
        let p = build(3);
        assert_eq!(run_outputs(&p, 2_000_000), reference(3));
    }

    #[test]
    fn some_swaps_accepted_some_rejected() {
        let r = reference(1);
        assert!(
            r[0] > 0 && (r[0] as u32) < PROPOSALS,
            "accept rate degenerate: {r:?}"
        );
    }
}
