//! `go` stand-in: board-array move evaluation.
//!
//! Game-tree programs branch on irregular board state, giving SPEC `go`
//! the worst branch accuracy in Table 1 (84%). This kernel replays a move
//! stream over a 19×19 byte board: each candidate square is tested for
//! occupancy, its four neighbours are bounds-checked and probed for
//! liberties, and the placement decision depends on the (pseudo-random)
//! local configuration — branches with little exploitable pattern.

use crate::util::XorShift32;
use popk_isa::builder::Builder;
use popk_isa::{Program, Reg};

/// Board edge length.
pub const N: u32 = 19;
/// Candidate moves per outer iteration.
pub const MOVES: u32 = 1024;

const SEED: u32 = 0x0000_676f; // "go"

fn gen_board_and_moves() -> (Vec<u8>, Vec<u32>) {
    let mut rng = XorShift32::new(SEED);
    let board: Vec<u8> = (0..N * N)
        .map(|_| match rng.below(4) {
            0 => 1, // black
            1 => 2, // white
            _ => 0, // empty
        })
        .collect();
    // Moves stored as packed (row << 8 | col).
    let moves: Vec<u32> = (0..MOVES)
        .map(|_| (rng.below(N) << 8) | rng.below(N))
        .collect();
    (board, moves)
}

/// Build the kernel; each iteration prints (stones placed, total
/// liberties observed).
pub fn build(iters: u32) -> Program {
    let (board, moves) = gen_board_and_moves();
    let mut b = Builder::new();
    let boardb = b.data_bytes(&board);
    b.align_data(4);
    let movesb = b.data_words(&moves);

    let (bb, mb, mi, placed, libs_total, iter) = (
        Reg::gpr(16),
        Reg::gpr(17),
        Reg::gpr(18),
        Reg::gpr(19),
        Reg::gpr(20),
        Reg::gpr(8),
    );
    let (row, col, libs, t0, t1, t2, idx) = (
        Reg::gpr(21),
        Reg::gpr(22),
        Reg::gpr(23),
        Reg::gpr(9),
        Reg::gpr(10),
        Reg::gpr(11),
        Reg::gpr(24),
    );

    b.here("main");
    b.la(bb, boardb);
    b.la(mb, movesb);
    b.li(iter, iters as i32);

    let outer = b.here("outer");
    b.li(placed, 0);
    b.li(libs_total, 0);
    b.li(mi, 0);

    let mv = b.here("move");
    let next_move = b.named("next_move");
    b.sll(t0, mi, 2);
    b.addu(t0, t0, mb);
    b.lw(t1, 0, t0);
    b.srl(row, t1, 8);
    b.andi(col, t1, 0xff);

    // idx = row * 19 + col  (19 = 16 + 2 + 1)
    b.sll(t0, row, 4);
    b.sll(t1, row, 1);
    b.addu(t0, t0, t1);
    b.addu(t0, t0, row);
    b.addu(idx, t0, col);

    // Occupied squares are skipped.
    b.addu(t0, bb, idx);
    b.lbu(t1, 0, t0);
    b.bne(t1, Reg::ZERO, next_move);

    // Count empty orthogonal neighbours (with bounds checks).
    b.li(libs, 0);
    // North: row > 0.
    let no_north = b.label();
    b.beq(row, Reg::ZERO, no_north);
    b.addiu(t0, idx, -(N as i16));
    b.addu(t0, t0, bb);
    b.lbu(t1, 0, t0);
    b.bgtz(t1, no_north);
    b.addiu(libs, libs, 1);
    b.bind(no_north);
    // South: row < N-1.
    let no_south = b.label();
    b.li(t2, (N - 1) as i32);
    b.beq(row, t2, no_south);
    b.addiu(t0, idx, N as i16);
    b.addu(t0, t0, bb);
    b.lbu(t1, 0, t0);
    b.bgtz(t1, no_south);
    b.addiu(libs, libs, 1);
    b.bind(no_south);
    // West: col > 0.
    let no_west = b.label();
    b.beq(col, Reg::ZERO, no_west);
    b.addiu(t0, idx, -1);
    b.addu(t0, t0, bb);
    b.lbu(t1, 0, t0);
    b.bgtz(t1, no_west);
    b.addiu(libs, libs, 1);
    b.bind(no_west);
    // East: col < N-1.
    let no_east = b.label();
    b.li(t2, (N - 1) as i32);
    b.beq(col, t2, no_east);
    b.addiu(t0, idx, 1);
    b.addu(t0, t0, bb);
    b.lbu(t1, 0, t0);
    b.bgtz(t1, no_east);
    b.addiu(libs, libs, 1);
    b.bind(no_east);

    b.addu(libs_total, libs_total, libs);
    // Place a stone when the square has at least two liberties
    // (libs - 2 < 0 rejects).
    b.addiu(t1, libs, -2);
    b.bltz(t1, next_move);
    b.li(t1, 1);
    b.addu(t0, bb, idx);
    b.sb(t1, 0, t0);
    b.addiu(placed, placed, 1);

    {
        let l = b.named("next_move");
        b.bind(l);
    }
    b.addiu(mi, mi, 1);
    b.addiu(t0, mi, -(MOVES as i16));
    b.bltz(t0, mv);

    b.print_int(placed);
    b.print_int(libs_total);
    b.addiu(iter, iter, -1);
    b.bne(iter, Reg::ZERO, outer);
    b.exit();
    b.finish()
}

/// The Rust reference model.
pub fn reference(iters: u32) -> Vec<i32> {
    let (mut board, moves) = gen_board_and_moves();
    let n = N as usize;
    let mut out = Vec::new();
    for _ in 0..iters {
        let (mut placed, mut libs_total) = (0u32, 0u32);
        for &m in &moves {
            let (row, col) = ((m >> 8) as usize, (m & 0xff) as usize);
            let idx = row * n + col;
            if board[idx] != 0 {
                continue;
            }
            let mut libs = 0u32;
            if row > 0 && board[idx - n] == 0 {
                libs += 1;
            }
            if row < n - 1 && board[idx + n] == 0 {
                libs += 1;
            }
            if col > 0 && board[idx - 1] == 0 {
                libs += 1;
            }
            if col < n - 1 && board[idx + 1] == 0 {
                libs += 1;
            }
            libs_total += libs;
            if libs >= 2 {
                board[idx] = 1;
                placed += 1;
            }
        }
        out.push(placed as i32);
        out.push(libs_total as i32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_outputs;

    #[test]
    fn matches_reference() {
        let p = build(3);
        assert_eq!(run_outputs(&p, 2_000_000), reference(3));
    }

    #[test]
    fn board_saturates_over_iterations() {
        // Placements mutate the board, so later iterations place fewer.
        let r = reference(5);
        let first = r[0];
        let last = r[8];
        assert!(last <= first);
    }
}
