//! Partial tag matching in set-associative caches (Fig. 4).
//!
//! Replays the data-reference stream through a cache of the configured
//! geometry. Before each access, the probe is classified for every
//! partial-tag width `t` (0 ..= full); then the access proceeds normally
//! (LRU fill). The figure plots, per absolute address bit position, the
//! share of accesses in each of four categories.

use crate::TraceSink;
use popk_cache::{Cache, CacheConfig, PartialOutcome};
use popk_emu::TraceRecord;

/// The four Fig. 4 categories.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TagCategory {
    /// A unique partial match that the full tag confirms.
    SingleHit,
    /// A unique partial match that the full tag refutes (a miss).
    SingleMiss,
    /// No way matches: a provable early miss.
    ZeroMatch,
    /// Multiple ways match the partial tag.
    MultMatch,
}

impl TagCategory {
    /// All categories in legend order.
    pub const ALL: [TagCategory; 4] = [
        TagCategory::SingleHit,
        TagCategory::SingleMiss,
        TagCategory::ZeroMatch,
        TagCategory::MultMatch,
    ];

    /// Index into count arrays.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("ALL lists every variant")
    }

    /// Legend label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            TagCategory::SingleHit => "single entry - hit",
            TagCategory::SingleMiss => "single entry - miss",
            TagCategory::ZeroMatch => "zero match",
            TagCategory::MultMatch => "mult match",
        }
    }

    fn of(outcome: PartialOutcome) -> TagCategory {
        match outcome {
            PartialOutcome::SingleHit { .. } => TagCategory::SingleHit,
            PartialOutcome::SingleMiss => TagCategory::SingleMiss,
            PartialOutcome::ZeroMatch => TagCategory::ZeroMatch,
            PartialOutcome::MultiMatch { .. } => TagCategory::MultMatch,
        }
    }
}

/// Aggregated Fig. 4 data for one cache geometry.
#[derive(Clone, Debug)]
pub struct TagMatchReport {
    /// Geometry studied.
    pub config: CacheConfig,
    /// `counts[t][c]`: accesses in category `c` with `t` known tag bits
    /// (`t` ranges `0 ..= tag_bits`).
    pub counts: Vec<[u64; 4]>,
    /// Total data accesses.
    pub accesses: u64,
    /// Conventional hit count (for the convergence check: as `t` grows,
    /// SingleHit → hit rate and ZeroMatch+SingleMiss → miss rate).
    pub hits: u64,
    /// Accesses where the MRU way-prediction among multiple partial
    /// matchers chose the correct way, per tag-bit count.
    pub mru_correct: Vec<u64>,
}

impl TagMatchReport {
    /// Percentages for `t` known tag bits, in [`TagCategory::ALL`] order.
    pub fn percent_with_tag_bits(&self, t: u32) -> [f64; 4] {
        let row = &self.counts[t as usize];
        let mut out = [0.0; 4];
        for (o, &c) in out.iter_mut().zip(row.iter()) {
            *o = 100.0 * c as f64 / self.accesses.max(1) as f64;
        }
        out
    }

    /// The absolute address bit index of the `t`-th tag bit (the figure's
    /// x-axis; `t >= 1`).
    pub fn bit_position(&self, t: u32) -> u32 {
        self.config.tag_start_bit() + t - 1
    }

    /// Way-prediction accuracy among accesses that would speculate (a way
    /// was selected: unique match or MRU among several) with `t` known tag
    /// bits: fraction of those where the selected way is the hit way.
    pub fn speculation_accuracy(&self, t: u32) -> f64 {
        let row = &self.counts[t as usize];
        let single_hit = row[TagCategory::SingleHit.index()];
        let single_miss = row[TagCategory::SingleMiss.index()];
        let mult = row[TagCategory::MultMatch.index()];
        let speculated = single_hit + single_miss + mult;
        if speculated == 0 {
            return 1.0;
        }
        (single_hit + self.mru_correct[t as usize]) as f64 / speculated as f64
    }
}

/// The Fig. 4 study.
pub struct TagMatchStudy {
    cache: Cache,
    counts: Vec<[u64; 4]>,
    mru_correct: Vec<u64>,
    accesses: u64,
    hits: u64,
}

impl TagMatchStudy {
    /// Study a cache of geometry `cfg`.
    pub fn new(cfg: CacheConfig) -> TagMatchStudy {
        let n = cfg.tag_bits() as usize + 1;
        TagMatchStudy {
            cache: Cache::new(cfg),
            counts: vec![[0; 4]; n],
            mru_correct: vec![0; n],
            accesses: 0,
            hits: 0,
        }
    }

    /// Finish and report.
    pub fn report(&self) -> TagMatchReport {
        TagMatchReport {
            config: *self.cache.config(),
            counts: self.counts.clone(),
            accesses: self.accesses,
            hits: self.hits,
            mru_correct: self.mru_correct.clone(),
        }
    }
}

impl TraceSink for TagMatchStudy {
    fn observe(&mut self, rec: &TraceRecord) {
        if !rec.is_mem() {
            return;
        }
        let addr = rec.ea;
        let tag_bits = self.cache.config().tag_bits();
        for t in 0..=tag_bits {
            let outcome = self.cache.partial_probe(addr, t);
            self.counts[t as usize][TagCategory::of(outcome).index()] += 1;
            if let PartialOutcome::MultiMatch {
                mru_correct: true, ..
            } = outcome
            {
                self.mru_correct[t as usize] += 1;
            }
        }
        self.accesses += 1;
        if self.cache.access(addr).hit {
            self.hits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_emu::Machine;

    fn feed(study: &mut TagMatchStudy, src: &str) {
        let p = popk_isa::asm::assemble(src).unwrap();
        let mut m = Machine::new(&p);
        for rec in m.trace(100_000) {
            study.observe(&rec.unwrap());
        }
    }

    #[test]
    fn repeated_access_converges_to_single_hit() {
        let mut s = TagMatchStudy::new(CacheConfig::l1d_table2());
        feed(
            &mut s,
            r#"
            .text
            main:
                li r8, 0x10000000
                lw r9, 0(r8)    # cold miss (zero match at full width)
                lw r9, 0(r8)    # hit
                lw r9, 0(r8)    # hit
                li r2, 0
                syscall
            "#,
        );
        let r = s.report();
        assert_eq!(r.accesses, 3);
        assert_eq!(r.hits, 2);
        let full = r.config.tag_bits();
        let row = r.counts[full as usize];
        assert_eq!(row[TagCategory::ZeroMatch.index()], 1);
        assert_eq!(row[TagCategory::SingleHit.index()], 2);
        // With zero tag bits known, the resident line still matches: the
        // two warm accesses are unique matches even with t = 0 (only one
        // way valid in the set).
        let row0 = r.counts[0];
        assert_eq!(row0[TagCategory::SingleHit.index()], 2);
    }

    #[test]
    fn full_width_matches_conventional_hit_rate() {
        let mut s = TagMatchStudy::new(CacheConfig::small_8k(4));
        feed(
            &mut s,
            r#"
            .text
            main:
                li r8, 0x10000000
                li r10, 64          # 64 lines x 32B = beyond one set
            loop:
                lw r9, 0(r8)
                addiu r8, r8, 32
                addiu r10, r10, -1
                bne r10, r0, loop
                li r2, 0
                syscall
            "#,
        );
        let r = s.report();
        let full = r.config.tag_bits() as usize;
        let hits_at_full = r.counts[full][TagCategory::SingleHit.index()];
        assert_eq!(hits_at_full, r.hits);
        let misses_at_full = r.counts[full][TagCategory::ZeroMatch.index()]
            + r.counts[full][TagCategory::SingleMiss.index()];
        assert_eq!(misses_at_full, r.accesses - r.hits);
        assert_eq!(
            r.counts[full][TagCategory::MultMatch.index()],
            0,
            "full tags cannot leave ambiguity"
        );
    }

    #[test]
    fn bit_positions_follow_geometry() {
        let s = TagMatchStudy::new(CacheConfig::small_8k(8));
        let r = s.report();
        // 8KB 8-way 32B: offset 5, 32 sets → index 5, tag starts at bit 10.
        assert_eq!(r.bit_position(1), 10);
        assert_eq!(r.bit_position(6), 15);
    }
}
