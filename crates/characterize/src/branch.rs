//! Early resolution of conditional branches (Fig. 6 and the §5.3
//! aggregates).
//!
//! A 64K-entry gshare predicts every conditional branch in the trace. For
//! each *misprediction*, [`popk_slice::mispredict_detection_bit`] computes
//! how many low-order operand bits prove the misprediction; the figure is
//! the CDF of that quantity. `beq`/`bne` shares of dynamic branches and
//! of mispredictions reproduce the paper's 61% / 48% claims.

use crate::TraceSink;
use popk_bpred::{DirectionPredictor, Gshare};
use popk_emu::TraceRecord;
use popk_slice::{mispredict_detection_bit, FULL_WIDTH_BITS};

/// Aggregated Fig. 6 data.
#[derive(Clone, Debug)]
pub struct BranchReport {
    /// `detect_by_bits[k]`: mispredictions provable using at most `k+1`
    /// low-order bits (cumulative; index 31 == all mispredictions).
    pub detect_by_bits: [u64; FULL_WIDTH_BITS as usize],
    /// Dynamic conditional branches.
    pub branches: u64,
    /// Dynamic `beq`/`bne`.
    pub eq_ne_branches: u64,
    /// Total mispredictions.
    pub mispredicts: u64,
    /// Mispredictions on `beq`/`bne`.
    pub eq_ne_mispredicts: u64,
}

impl BranchReport {
    /// Percent of mispredictions detectable within `bits` low-order bits.
    pub fn percent_detected_within(&self, bits: u32) -> f64 {
        assert!((1..=FULL_WIDTH_BITS).contains(&bits));
        100.0 * self.detect_by_bits[(bits - 1) as usize] as f64 / self.mispredicts.max(1) as f64
    }

    /// Direction-prediction accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.branches == 0 {
            return 1.0;
        }
        1.0 - self.mispredicts as f64 / self.branches as f64
    }

    /// `beq`/`bne` share of dynamic conditional branches (§5.3: 61% across
    /// the paper's suite).
    pub fn eq_ne_branch_share(&self) -> f64 {
        self.eq_ne_branches as f64 / self.branches.max(1) as f64
    }

    /// `beq`/`bne` share of mispredictions (§5.3: 48%).
    pub fn eq_ne_mispredict_share(&self) -> f64 {
        self.eq_ne_mispredicts as f64 / self.mispredicts.max(1) as f64
    }
}

/// The Fig. 6 study.
pub struct BranchStudy {
    predictor: Gshare,
    report: BranchReport,
}

impl BranchStudy {
    /// With a `2^index_bits`-entry gshare (paper: 16 → 64K entries).
    pub fn new(index_bits: u32) -> BranchStudy {
        BranchStudy {
            predictor: Gshare::new(index_bits),
            report: BranchReport {
                detect_by_bits: [0; FULL_WIDTH_BITS as usize],
                branches: 0,
                eq_ne_branches: 0,
                mispredicts: 0,
                eq_ne_mispredicts: 0,
            },
        }
    }

    /// The paper's configuration (64K entries).
    pub fn table2() -> BranchStudy {
        BranchStudy::new(16)
    }

    /// Finish and report.
    pub fn report(&self) -> BranchReport {
        self.report.clone()
    }
}

impl TraceSink for BranchStudy {
    fn observe(&mut self, rec: &TraceRecord) {
        let Some(cond) = rec.insn.op().branch_cond() else {
            return;
        };
        let predicted = self.predictor.predict(rec.pc);
        self.predictor.update(rec.pc, rec.taken);

        self.report.branches += 1;
        let eq_ne = cond.early_resolvable();
        if eq_ne {
            self.report.eq_ne_branches += 1;
        }
        if predicted == rec.taken {
            return;
        }
        self.report.mispredicts += 1;
        if eq_ne {
            self.report.eq_ne_mispredicts += 1;
        }
        // Resolve by register: `beq rX, rX` dedups its use set, and the
        // sign-testing types compare against the hardwired zero.
        let rs = rec.src_vals[0];
        let rt = rec.src_val(rec.insn.rt()).unwrap_or(0);
        let bits = mispredict_detection_bit(cond, rs, rt, predicted)
            .expect("outcome differs from prediction, detection must exist");
        for k in bits..=FULL_WIDTH_BITS {
            if k >= 1 {
                self.report.detect_by_bits[(k - 1) as usize] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_emu::Machine;

    fn feed(study: &mut BranchStudy, src: &str, limit: u64) {
        let p = popk_isa::asm::assemble(src).unwrap();
        let mut m = Machine::new(&p);
        for rec in m.trace(limit) {
            study.observe(&rec.unwrap());
        }
    }

    #[test]
    fn fig5_idiom_detects_at_bit_zero() {
        // A bne on a 1-bit quantity that alternates: mispredictions are
        // always provable from bit 0.
        let mut s = BranchStudy::new(10);
        feed(
            &mut s,
            r#"
            .text
            main:
                li r8, 200        # trip count
                li r9, 0
            loop:
                andi r10, r8, 1   # low bit alternates each iteration
                beq r10, r0, even
                addiu r9, r9, 1
            even:
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
            "#,
            10_000,
        );
        let r = s.report();
        assert!(
            r.mispredicts > 0,
            "alternating branch must mispredict sometimes"
        );
        // Mispredictions of `beq r10, r0` where r10 != 0 are provable at
        // bit 0; those where r10 == 0 need full width. The loop-exit bne
        // needs full width when it mispredicts as "not taken means equal".
        assert!(r.percent_detected_within(32) == 100.0);
        assert!(r.percent_detected_within(1) > 0.0);
    }

    #[test]
    fn counts_eq_ne_shares() {
        let mut s = BranchStudy::new(10);
        feed(
            &mut s,
            r#"
            .text
            main:
                li r8, 50
            loop:
                bltz r8, never    # sign branch, never taken
                bne r8, r0, cont  # eq/ne branch
            cont:
                addiu r8, r8, -1
                bgez r8, loop
            never:
                li r2, 0
                syscall
            "#,
            10_000,
        );
        let r = s.report();
        assert!(r.branches > 100);
        assert!(r.eq_ne_branch_share() > 0.2 && r.eq_ne_branch_share() < 0.5);
        assert!(r.accuracy() > 0.5);
    }

    #[test]
    fn detection_cdf_is_monotone() {
        let mut s = BranchStudy::table2();
        let w = popk_workloads::by_name("li").unwrap();
        let p = w.test_program();
        let mut m = Machine::new(&p);
        for rec in m.trace(200_000) {
            s.observe(&rec.unwrap());
        }
        let r = s.report();
        assert!(r.mispredicts > 0);
        let mut prev = 0.0;
        for bits in 1..=32 {
            let v = r.percent_detected_within(bits);
            assert!(v >= prev, "CDF must be monotone");
            prev = v;
        }
        assert_eq!(prev, 100.0);
    }
}
