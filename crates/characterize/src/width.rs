//! Operand-width characterization (the §6 premise).
//!
//! The paper's narrow-width note (citing Brooks & Martonosi \[3\] and
//! Canal, González & Smith \[6\]) rests on an empirical fact: most
//! produced values are sign/zero extensions of a narrow low slice. This
//! study measures that distribution over a dynamic trace — the
//! justification for the `narrow_operands` extension in `popk-core`.

use crate::TraceSink;
use popk_emu::TraceRecord;
use popk_isa::OpClass;

/// Histogram of result significant widths.
#[derive(Clone, Debug)]
pub struct WidthReport {
    /// `by_width[w]`: results whose significant width is exactly `w+1`
    /// bits (a value's significant width is the bits left after removing
    /// sign/zero extension; the width of 0 and -1 is 1).
    pub by_width: [u64; 32],
    /// Total register-writing instructions observed.
    pub results: u64,
}

impl WidthReport {
    /// Fraction of results representable within `bits` significant bits
    /// (i.e. whose upper `32 - bits` bits are pure sign/zero extension).
    pub fn fraction_within(&self, bits: u32) -> f64 {
        assert!((1..=32).contains(&bits));
        let n: u64 = self.by_width[..bits as usize].iter().sum();
        n as f64 / self.results.max(1) as f64
    }

    /// Mean significant width in bits.
    pub fn mean_width(&self) -> f64 {
        let sum: u64 = self
            .by_width
            .iter()
            .enumerate()
            .map(|(w, &n)| (w as u64 + 1) * n)
            .sum();
        sum as f64 / self.results.max(1) as f64
    }
}

/// Significant width of a value: 32 minus the redundant sign-extension
/// bits (minimum 1).
pub fn significant_width(v: u32) -> u32 {
    let s = v as i32;
    if s >= 0 {
        // Leading zeros are redundant, but the top data bit needs a zero
        // above it only when treated as signed; count plain magnitude.
        (32 - v.leading_zeros()).max(1)
    } else {
        (32 - (!v).leading_zeros() + 1).max(1)
    }
}

/// The width study sink.
pub struct WidthStudy {
    report: WidthReport,
}

impl Default for WidthStudy {
    fn default() -> Self {
        Self::new()
    }
}

impl WidthStudy {
    /// An empty study.
    pub fn new() -> WidthStudy {
        WidthStudy {
            report: WidthReport {
                by_width: [0; 32],
                results: 0,
            },
        }
    }

    /// Finish and report.
    pub fn report(&self) -> WidthReport {
        self.report.clone()
    }
}

impl TraceSink for WidthStudy {
    fn observe(&mut self, rec: &TraceRecord) {
        // Count integer results only (FP bit patterns are never narrow in
        // a meaningful sense; control writes nothing).
        if matches!(rec.insn.op().class(), OpClass::Fp) {
            return;
        }
        for (i, _def) in rec.insn.defs().iter().enumerate() {
            let w = significant_width(rec.results[i]);
            self.report.by_width[(w - 1) as usize] += 1;
            self.report.results += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_emu::Machine;

    #[test]
    fn widths_of_known_values() {
        assert_eq!(significant_width(0), 1);
        assert_eq!(significant_width(1), 1);
        assert_eq!(significant_width(2), 2);
        assert_eq!(significant_width(255), 8);
        assert_eq!(significant_width(256), 9);
        assert_eq!(significant_width(u32::MAX), 1); // -1: one sign bit
        assert_eq!(significant_width(-2i32 as u32), 2);
        assert_eq!(significant_width(-128i32 as u32), 8);
        assert_eq!(significant_width(-129i32 as u32), 9);
        assert_eq!(significant_width(0x8000_0000), 32);
    }

    #[test]
    fn narrow_values_dominate_typical_kernels() {
        let w = popk_workloads::by_name("gcc").unwrap();
        let p = w.test_program();
        let mut study = WidthStudy::new();
        let mut m = Machine::new(&p);
        for rec in m.trace(50_000) {
            study.observe(&rec.unwrap());
        }
        let r = study.report();
        assert!(r.results > 10_000);
        // The §6 premise: a majority of results fit in 16 bits.
        assert!(
            r.fraction_within(16) > 0.4,
            "16-bit-narrow fraction {}",
            r.fraction_within(16)
        );
        assert!(r.fraction_within(32) >= 0.999);
        assert!(r.mean_width() < 24.0);
    }

    #[test]
    fn histogram_partitions_results() {
        let w = popk_workloads::by_name("parser").unwrap();
        let p = w.test_program();
        let mut study = WidthStudy::new();
        let mut m = Machine::new(&p);
        for rec in m.trace(20_000) {
            study.observe(&rec.unwrap());
        }
        let r = study.report();
        assert_eq!(r.by_width.iter().sum::<u64>(), r.results);
    }
}
