//! Dependence-distance characterization (the §1/§2 motivation).
//!
//! The paper's premise is that pipelining the execute stage hurts because
//! *dependent instructions sit close together*: a consumer one or two
//! dynamic instructions behind its producer observes the full end-to-end
//! EX latency (Fig. 1b). This study measures the distribution of
//! producer→consumer distances, quantifying how much of the instruction
//! stream is exposed to that loss.

use crate::TraceSink;
use popk_emu::TraceRecord;
use popk_isa::Reg;

/// Distances above this are lumped into the final bucket (they are
/// invisible to EX pipelining anyway: the producer long since finished).
pub const MAX_DISTANCE: usize = 64;

/// Aggregated dependence-distance data.
#[derive(Clone, Debug)]
pub struct DistanceReport {
    /// `by_distance[d-1]`: source operands whose producer retired `d`
    /// dynamic instructions earlier (`d` capped at [`MAX_DISTANCE`]).
    pub by_distance: [u64; MAX_DISTANCE],
    /// Total register source operands with an in-trace producer.
    pub operands: u64,
    /// Instructions observed.
    pub instructions: u64,
}

impl DistanceReport {
    /// Fraction of source operands produced at most `d` instructions
    /// earlier.
    pub fn fraction_within(&self, d: usize) -> f64 {
        assert!((1..=MAX_DISTANCE).contains(&d));
        let n: u64 = self.by_distance[..d].iter().sum();
        n as f64 / self.operands.max(1) as f64
    }

    /// Mean producer→consumer distance (capped operands count as
    /// [`MAX_DISTANCE`]).
    pub fn mean_distance(&self) -> f64 {
        let sum: u64 = self
            .by_distance
            .iter()
            .enumerate()
            .map(|(d, &n)| (d as u64 + 1) * n)
            .sum();
        sum as f64 / self.operands.max(1) as f64
    }
}

/// The dependence-distance sink.
pub struct DistanceStudy {
    last_writer: [Option<u64>; Reg::COUNT],
    seq: u64,
    report: DistanceReport,
}

impl Default for DistanceStudy {
    fn default() -> Self {
        Self::new()
    }
}

impl DistanceStudy {
    /// An empty study.
    pub fn new() -> DistanceStudy {
        DistanceStudy {
            last_writer: [None; Reg::COUNT],
            seq: 0,
            report: DistanceReport {
                by_distance: [0; MAX_DISTANCE],
                operands: 0,
                instructions: 0,
            },
        }
    }

    /// Finish and report.
    pub fn report(&self) -> DistanceReport {
        self.report.clone()
    }
}

impl TraceSink for DistanceStudy {
    fn observe(&mut self, rec: &TraceRecord) {
        for src in rec.insn.uses().iter() {
            if src.is_zero() {
                continue;
            }
            if let Some(w) = self.last_writer[src.index()] {
                let d = ((self.seq - w) as usize).min(MAX_DISTANCE);
                self.report.by_distance[d - 1] += 1;
                self.report.operands += 1;
            }
        }
        for def in rec.insn.defs().iter() {
            self.last_writer[def.index()] = Some(self.seq);
        }
        self.seq += 1;
        self.report.instructions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_emu::Machine;

    fn run(name: &str, limit: u64) -> DistanceReport {
        let p = popk_workloads::by_name(name).unwrap().test_program();
        let mut study = DistanceStudy::new();
        let mut m = Machine::new(&p);
        for rec in m.trace(limit) {
            study.observe(&rec.unwrap());
        }
        study.report()
    }

    #[test]
    fn chains_sit_close_together() {
        // The paper's premise: a large share of operands come from the
        // immediately preceding instructions.
        let r = run("gcc", 50_000);
        assert!(r.operands > 10_000);
        let within2 = r.fraction_within(2);
        assert!(
            within2 > 0.3,
            "short dependence distances should dominate, got {within2}"
        );
        assert!(r.fraction_within(MAX_DISTANCE) >= 0.999);
        assert!(r.mean_distance() < 20.0);
    }

    #[test]
    fn cdf_is_monotone_and_partitions() {
        let r = run("twolf", 30_000);
        let mut prev = 0.0;
        for d in 1..=MAX_DISTANCE {
            let v = r.fraction_within(d);
            assert!(v >= prev);
            prev = v;
        }
        assert_eq!(r.by_distance.iter().sum::<u64>(), r.operands);
    }

    #[test]
    fn hand_built_distances() {
        use popk_isa::asm::assemble;
        let p = assemble(
            r#"
            .text
            main:
                addiu r8, r0, 1    # producer
                addu  r9, r8, r8   # one deduped operand at distance 1
                nop
                addu  r10, r9, r8  # r9 at distance 2, r8 at distance 3
                li r2, 0
                syscall
            "#,
        )
        .unwrap();
        let mut study = DistanceStudy::new();
        let mut m = Machine::new(&p);
        for rec in m.trace(100) {
            study.observe(&rec.unwrap());
        }
        let r = study.report();
        // Distance-1 operands: addu r9's deduped r8, the `ori` inside the
        // expanded `li r2, 0` pseudo-op, and syscall's v0.
        assert_eq!(r.by_distance[0], 3);
        // addu r10 (seq 3): r9 written at seq 1 → distance 2; r8 written
        // at seq 0 → distance 3.
        assert_eq!(r.by_distance[1], 1);
        assert_eq!(r.by_distance[2], 1);
    }
}
