//! Early load-store disambiguation (Fig. 2).
//!
//! For every dynamic load, compare its data address against the addresses
//! of the prior stores resident in a unified load/store queue, using only
//! address bits `[2, 2+k)` for each cumulative bit count `k`. Each (load,
//! bit-count) pair falls into one of the paper's seven categories; the
//! figure plots category shares against the highest bit index used.

use crate::TraceSink;
use popk_emu::TraceRecord;
use std::collections::VecDeque;

/// The seven Fig. 2 categories.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DisambigCategory {
    /// The LSQ holds no prior stores at all.
    NoStores,
    /// Stores exist but none matches the partial address.
    ZeroMatch,
    /// Exactly one store matches partially, and its full address differs.
    SingleNonMatch,
    /// Exactly one store matches partially and fully, and it is the only
    /// store in the queue.
    SingleMatchOneStore,
    /// Exactly one store matches partially and fully, disambiguated from
    /// other (non-matching) stores.
    SingleMatchMultStores,
    /// Multiple stores match partially, but all share one full address
    /// (forward from the youngest).
    MultMatchSameAddr,
    /// Multiple stores match partially with differing full addresses.
    MultMatchDiffAddr,
}

impl DisambigCategory {
    /// All categories, in the paper's legend order.
    pub const ALL: [DisambigCategory; 7] = [
        DisambigCategory::NoStores,
        DisambigCategory::ZeroMatch,
        DisambigCategory::SingleNonMatch,
        DisambigCategory::SingleMatchOneStore,
        DisambigCategory::SingleMatchMultStores,
        DisambigCategory::MultMatchSameAddr,
        DisambigCategory::MultMatchDiffAddr,
    ];

    /// Index into per-category count arrays.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("ALL lists every variant")
    }

    /// Legend label matching the paper's figure.
    pub fn label(self) -> &'static str {
        match self {
            DisambigCategory::NoStores => "no stores in queue",
            DisambigCategory::ZeroMatch => "zero entries match",
            DisambigCategory::SingleNonMatch => "single entry - non-match",
            DisambigCategory::SingleMatchOneStore => "single entry - match (one store)",
            DisambigCategory::SingleMatchMultStores => "single entry - match (mult stores)",
            DisambigCategory::MultMatchSameAddr => "mult entries match - same addr",
            DisambigCategory::MultMatchDiffAddr => "mult entries match - diff addr",
        }
    }
}

/// Comparison starts at address bit 2 (word-aligned low bits carry no
/// disambiguation information for word traffic).
pub const FIRST_BIT: u32 = 2;
/// Highest address bit (inclusive); using bits `[2, 31]` is the full
/// conventional comparison.
pub const LAST_BIT: u32 = 31;

const NBITS: usize = (LAST_BIT - FIRST_BIT + 1) as usize;
const NCAT: usize = 7;

/// Aggregated Fig. 2 data.
#[derive(Clone, Debug)]
pub struct DisambigReport {
    /// `counts[b][c]`: loads classified into category `c` when bits
    /// `[2, 2+b]` of the address are compared.
    pub counts: Vec<[u64; NCAT]>,
    /// Total loads observed.
    pub loads: u64,
}

impl DisambigReport {
    /// Percentage table row for cumulative bit index `bit` (2..=31).
    pub fn percent_at_bit(&self, bit: u32) -> [f64; NCAT] {
        let row = &self.counts[(bit - FIRST_BIT) as usize];
        let mut out = [0.0; NCAT];
        for (o, &c) in out.iter_mut().zip(row.iter()) {
            *o = 100.0 * c as f64 / self.loads.max(1) as f64;
        }
        out
    }

    /// The paper's §5.1 headline: share of loads fully resolved (all
    /// stores ruled out, or a unique — ultimately correct — forwarding
    /// candidate identified) after examining bits `[2, 2+k)`, i.e. `k`
    /// compared bits.
    pub fn resolved_after_bits(&self, bits: u32) -> f64 {
        let bit = (FIRST_BIT + bits - 1).min(LAST_BIT);
        let row = self.percent_at_bit(bit);
        // Resolved = no stores + zero match + unique full match (either
        // flavour) + multi-match-same-address.
        row[DisambigCategory::NoStores.index()]
            + row[DisambigCategory::ZeroMatch.index()]
            + row[DisambigCategory::SingleMatchOneStore.index()]
            + row[DisambigCategory::SingleMatchMultStores.index()]
            + row[DisambigCategory::MultMatchSameAddr.index()]
    }
}

#[derive(Clone, Copy)]
enum QueueEntry {
    Load,
    Store { addr: u32 },
}

/// The Fig. 2 study: a sliding unified LSQ window over the dynamic trace.
pub struct DisambigStudy {
    lsq_size: usize,
    queue: VecDeque<QueueEntry>,
    counts: Vec<[u64; NCAT]>,
    loads: u64,
}

impl DisambigStudy {
    /// With the paper's 32-entry unified queue, use `DisambigStudy::new(32)`.
    pub fn new(lsq_size: usize) -> DisambigStudy {
        assert!(lsq_size > 0);
        DisambigStudy {
            lsq_size,
            queue: VecDeque::with_capacity(lsq_size),
            counts: vec![[0; NCAT]; NBITS],
            loads: 0,
        }
    }

    /// Finish and report.
    pub fn report(&self) -> DisambigReport {
        DisambigReport {
            counts: self.counts.clone(),
            loads: self.loads,
        }
    }

    fn classify(&self, load_addr: u32, bits_through: u32) -> DisambigCategory {
        // Compare bits [2, bits_through] inclusive.
        let width = bits_through + 1; // bits [0, bits_through]
        let mask = if width >= 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        } & !0b11;
        let mut store_count = 0usize;
        let mut partial = [0u32; 64];
        let mut n = 0usize;
        for e in &self.queue {
            if let QueueEntry::Store { addr } = *e {
                store_count += 1;
                if (addr ^ load_addr) & mask == 0 && n < partial.len() {
                    partial[n] = addr;
                    n += 1;
                }
            }
        }
        if store_count == 0 {
            return DisambigCategory::NoStores;
        }
        match n {
            0 => DisambigCategory::ZeroMatch,
            1 => {
                // Full-address comparison ignores byte-in-word bits, as
                // the bit-serial comparison starts at bit 2.
                if (partial[0] ^ load_addr) & !0b11 == 0 {
                    if store_count == 1 {
                        DisambigCategory::SingleMatchOneStore
                    } else {
                        DisambigCategory::SingleMatchMultStores
                    }
                } else {
                    DisambigCategory::SingleNonMatch
                }
            }
            _ => {
                let first = partial[0] & !0b11;
                if partial[..n].iter().all(|&a| a & !0b11 == first) {
                    DisambigCategory::MultMatchSameAddr
                } else {
                    DisambigCategory::MultMatchDiffAddr
                }
            }
        }
    }
}

impl TraceSink for DisambigStudy {
    fn observe(&mut self, rec: &TraceRecord) {
        let op = rec.insn.op();
        if op.is_load() {
            self.loads += 1;
            for bit in FIRST_BIT..=LAST_BIT {
                let cat = self.classify(rec.ea, bit);
                self.counts[(bit - FIRST_BIT) as usize][cat.index()] += 1;
            }
        }
        if op.is_load() || op.is_store() {
            if self.queue.len() == self.lsq_size {
                self.queue.pop_front();
            }
            self.queue.push_back(if op.is_store() {
                QueueEntry::Store { addr: rec.ea }
            } else {
                QueueEntry::Load
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_emu::Machine;

    fn feed(study: &mut DisambigStudy, src: &str) {
        let p = popk_isa::asm::assemble(src).unwrap();
        let mut m = Machine::new(&p);
        for rec in m.trace(100_000) {
            study.observe(&rec.unwrap());
        }
    }

    #[test]
    fn no_stores_case() {
        let mut s = DisambigStudy::new(32);
        feed(
            &mut s,
            r#"
            .text
            main:
                li r8, 0x10000000
                lw r9, 0(r8)
                lw r9, 4(r8)
                li r2, 0
                syscall
            "#,
        );
        let r = s.report();
        assert_eq!(r.loads, 2);
        // Every bit position: both loads see an empty store queue.
        assert_eq!(r.counts[0][DisambigCategory::NoStores.index()], 2);
        assert_eq!(r.counts[NBITS - 1][DisambigCategory::NoStores.index()], 2);
    }

    #[test]
    fn exact_forward_case() {
        let mut s = DisambigStudy::new(32);
        feed(
            &mut s,
            r#"
            .text
            main:
                li r8, 0x10000000
                sw r8, 0(r8)
                lw r9, 0(r8)     # same address: unique match, one store
                li r2, 0
                syscall
            "#,
        );
        let r = s.report();
        assert_eq!(r.loads, 1);
        for b in 0..NBITS {
            assert_eq!(
                r.counts[b][DisambigCategory::SingleMatchOneStore.index()],
                1,
                "bit {b}"
            );
        }
        assert_eq!(r.resolved_after_bits(9), 100.0);
    }

    #[test]
    fn low_bits_distinguish_disjoint_addresses() {
        let mut s = DisambigStudy::new(32);
        // Store at +4, load at +8: differ at bit 2/3 → zero match from the
        // very first compared bit span that includes bit 2.
        feed(
            &mut s,
            r#"
            .text
            main:
                li r8, 0x10000000
                sw r8, 4(r8)
                lw r9, 8(r8)
                li r2, 0
                syscall
            "#,
        );
        let r = s.report();
        assert_eq!(r.counts[1][DisambigCategory::ZeroMatch.index()], 1); // bits 2..=3
        assert_eq!(r.resolved_after_bits(2), 100.0);
    }

    #[test]
    fn high_bit_alias_stays_ambiguous_until_late() {
        let mut s = DisambigStudy::new(32);
        // Store at 0x10000000, load at 0x10010000: identical low 16 bits.
        feed(
            &mut s,
            r#"
            .text
            main:
                li r8, 0x10000000
                li r10, 0x10010000
                sw r8, 0(r8)
                lw r9, 0(r10)
                li r2, 0
                syscall
            "#,
        );
        let r = s.report();
        // At bit 15 (14 bits compared) still a single partial match that
        // will NOT match fully.
        assert_eq!(r.counts[13][DisambigCategory::SingleNonMatch.index()], 1);
        // Once bit 16 is included the store is ruled out.
        assert_eq!(r.counts[14][DisambigCategory::ZeroMatch.index()], 1);
    }

    #[test]
    fn queue_is_bounded() {
        let mut s = DisambigStudy::new(2);
        feed(
            &mut s,
            r#"
            .text
            main:
                li r8, 0x10000000
                sw r8, 0(r8)
                sw r8, 4(r8)
                sw r8, 8(r8)     # evicts the first store from the window
                lw r9, 0(r8)     # oldest store no longer visible
                li r2, 0
                syscall
            "#,
        );
        let r = s.report();
        // The matching store (offset 0) fell out of the 2-entry window, so
        // full comparison finds zero matches.
        assert_eq!(r.counts[NBITS - 1][DisambigCategory::ZeroMatch.index()], 1);
    }
}
