//! # popk-characterize — trace-driven partial-operand studies
//!
//! The three characterization experiments of the paper's §5, each consuming
//! a dynamic trace from [`popk_emu`]:
//!
//! * [`DisambigStudy`] (Fig. 2) — bit-serial comparison of each load
//!   address against the prior stores in a 32-entry unified load/store
//!   queue, classified into the paper's seven categories per bit position.
//! * [`TagMatchStudy`] (Fig. 4) — partial tag matching in a set-associative
//!   cache: for every data access and every partial-tag width, does the
//!   probe rule out all ways, identify a unique hit, a false unique
//!   candidate, or leave multiple candidates?
//! * [`BranchStudy`] (Fig. 6) — for every gshare misprediction, how many
//!   low-order bits of the branch comparison prove the misprediction?
//!   Plus the §5.3 aggregates (beq/bne share of branches and of
//!   mispredictions).
//! * [`WidthStudy`] (the §6 premise) — distribution of result significant
//!   widths, justifying the narrow-operand extension.
//! * [`DistanceStudy`] (the §1/§2 motivation) — producer→consumer
//!   dependence distances: how much of the stream a pipelined EX hurts.
//!
//! All three implement [`TraceSink`], so one emulation pass can feed any
//! subset via [`drive`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod disambig;
mod distance;
mod tagmatch;
mod width;

pub use branch::{BranchReport, BranchStudy};
pub use disambig::{DisambigCategory, DisambigReport, DisambigStudy};
pub use distance::{DistanceReport, DistanceStudy, MAX_DISTANCE};
pub use tagmatch::{TagCategory, TagMatchReport, TagMatchStudy};
pub use width::{significant_width, WidthReport, WidthStudy};

use popk_emu::{EmuError, Machine, TraceRecord};
use popk_isa::Program;

/// Anything that consumes trace records.
pub trait TraceSink {
    /// Observe one retired instruction.
    fn observe(&mut self, rec: &TraceRecord);
}

/// Run `program` for up to `limit` instructions, feeding every record to
/// each sink. Returns the number of instructions traced.
pub fn drive(
    program: &Program,
    limit: u64,
    sinks: &mut [&mut dyn TraceSink],
) -> Result<u64, EmuError> {
    let mut machine = Machine::new(program);
    let mut n = 0u64;
    for rec in machine.trace(limit) {
        let rec = rec?;
        for sink in sinks.iter_mut() {
            sink.observe(&rec);
        }
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl TraceSink for Counter {
        fn observe(&mut self, _rec: &TraceRecord) {
            self.0 += 1;
        }
    }

    #[test]
    fn drive_feeds_all_sinks() {
        let w = popk_workloads::by_name("parser").unwrap();
        let p = w.test_program();
        let mut a = Counter(0);
        let mut b = Counter(0);
        let n = drive(&p, 10_000, &mut [&mut a, &mut b]).unwrap();
        assert_eq!(n, 10_000);
        assert_eq!(a.0, n);
        assert_eq!(b.0, n);
    }
}
