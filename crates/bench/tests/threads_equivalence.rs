//! Sweep determinism across thread counts: `--threads 1` (fully serial)
//! and `--threads 4` must produce **byte-identical** JSON artifacts,
//! modulo the volatile `host` timing block, for the `table1` and
//! `ablations` sweeps at a 20 K budget.
//!
//! The job pool hands results back in submission order regardless of
//! which worker ran what, and the simulator is a pure function of
//! (program, config, budget) — so the serialized artifact must not
//! depend on the worker count at all. These tests pin that property
//! through the same report builders the binaries use.

use popk_bench::{ablations_report, table1_report, Report};

const BUDGET: u64 = 20_000;

/// Serialize a report's artifact with any `host` block stripped (the
/// builders never attach one, but strip defensively so the comparison
/// stays honest if that changes).
fn artifact_bytes(rep: Report) -> String {
    let mut body = rep.artifact.json().clone();
    body.remove("host");
    body.to_pretty(2)
}

#[test]
fn table1_threads1_equals_threads4() {
    let serial = artifact_bytes(table1_report(BUDGET, 1));
    let pooled = artifact_bytes(table1_report(BUDGET, 4));
    assert!(
        serial == pooled,
        "table1 artifact differs between --threads 1 and --threads 4"
    );
    assert!(serial.contains("\"figure\": \"table1\""));
}

#[test]
fn ablations_threads1_equals_threads4() {
    let serial = ablations_report(BUDGET, 1);
    let pooled = ablations_report(BUDGET, 4);
    // The printed report must match too — it is assembled from the same
    // submission-ordered results.
    assert!(
        serial.text == pooled.text,
        "ablations printed report differs between --threads 1 and --threads 4"
    );
    let serial = artifact_bytes(serial);
    let pooled = artifact_bytes(pooled);
    assert!(
        serial == pooled,
        "ablations artifact differs between --threads 1 and --threads 4"
    );
    assert!(serial.contains("\"figure\": \"ablations\""));
}
