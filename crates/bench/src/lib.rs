//! # popk-bench — experiment harness
//!
//! One runner per table/figure of the paper's evaluation, shared by the
//! report binaries (`table1`, `fig2`, `fig4`, `fig6`, `fig11`, `fig12`,
//! `ablations`) and the timing benches. Each binary prints the same
//! rows/series the paper reports; `EXPERIMENTS.md` records the measured
//! output next to the paper's numbers.
//!
//! All runners accept a dynamic-instruction budget; the binaries read it
//! from their first CLI argument (default [`DEFAULT_LIMIT`]) and accept
//! `--json` to additionally write a machine-readable
//! `BENCH_<figure>.json` artifact (see [`artifact`]). Sweeps fan their
//! (workload × config) simulation jobs across a scoped job [`pool`]
//! (`--threads N`, default all cores) and collect results in submission
//! order, so artifacts are byte-identical at any thread count; each
//! artifact carries a `host` block recording the sweep's wall-clock
//! throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod fmt;
pub mod journal;
pub mod pool;
pub mod reports;
pub mod runners;
pub mod serve;
pub mod timing;

pub use artifact::{Artifact, Cli, HostMeter};
pub use cache::{ArtifactCache, JobKey, CACHE_SCHEMA_VERSION};
pub use journal::{SweepJournal, JOURNAL_VERSION};
pub use pool::JobFailure;
pub use reports::{
    ablations_report, ablations_report_journaled, compare_report, fig11_report,
    fig11_report_journaled, fig12_report, fig12_report_journaled, rv32_report, rv32_report_with,
    table1_report, table1_report_journaled, table1_report_with, Report,
};
pub use runners::{
    arg_limit, compare, fig11, fig11_journaled, fig12_from, fig2, fig4, fig6, parse_config,
    rv32_configs, rv32_sweep, set_poisoned_workload, table1, table1_journaled, Fig11Column,
    Fig11Data, Rv32Row, SweepFailure, Table1Row, DEFAULT_LIMIT,
};
pub use serve::{Client, ClientError, RetryPolicy, ServeConfig, Server, PROTOCOL_VERSION};
