//! # popk-bench — experiment harness
//!
//! One runner per table/figure of the paper's evaluation, shared by the
//! report binaries (`table1`, `fig2`, `fig4`, `fig6`, `fig11`, `fig12`,
//! `ablations`) and the timing benches. Each binary prints the same
//! rows/series the paper reports; `EXPERIMENTS.md` records the measured
//! output next to the paper's numbers.
//!
//! All runners accept a dynamic-instruction budget; the binaries read it
//! from their first CLI argument (default [`DEFAULT_LIMIT`]) and accept
//! `--json` to additionally write a machine-readable
//! `BENCH_<figure>.json` artifact (see [`artifact`]). Workloads run in
//! parallel across OS threads, one simulation per thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod fmt;
pub mod runners;
pub mod timing;

pub use artifact::{Artifact, Cli};
pub use runners::{
    arg_limit, fig11, fig12_from, fig2, fig4, fig6, table1, Fig11Column, Fig11Data, Table1Row,
    DEFAULT_LIMIT,
};
