//! Machine-readable bench artifacts (`BENCH_<figure>.json`).
//!
//! Every report binary accepts a `--json` flag alongside the usual
//! instruction budget; when set, the binary also writes a
//! `BENCH_<figure>.json` artifact carrying the same numbers the printed
//! tables show — per-workload IPC, speedups, and full counter snapshots —
//! so runs can be diffed across commits by tooling instead of eyeballs.
//! The schema is documented in `EXPERIMENTS.md`; bump [`SCHEMA_VERSION`]
//! on any incompatible shape change.

use popk_core::{Json, SimStats, StatsRegistry};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Version stamp written into every artifact (`"schema_version"`).
pub const SCHEMA_VERSION: u64 = 1;

/// Parsed command line shared by the report binaries: an optional
/// instruction budget (any bare integer argument, `_` separators allowed),
/// the `--json` artifact toggle, a `--threads N` worker-count override
/// for the sweep executor, the `--oracle` lockstep toggle, and the
/// `--resume` crash-recovery toggle — accepted in any order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cli {
    /// Dynamic-instruction budget per simulation.
    pub limit: u64,
    /// Write a `BENCH_<figure>.json` artifact next to the printed report.
    pub json: bool,
    /// Sweep worker threads (default: all available cores; `--threads 1`
    /// reproduces fully serial execution).
    pub threads: usize,
    /// Run the functional machine in commit-time lockstep with every
    /// simulation, reporting any divergence as a sweep failure
    /// (binaries honouring this flag exit nonzero on divergence).
    pub oracle: bool,
    /// Resume an interrupted sweep from its journal (`.popk/`): completed
    /// rows are replayed from the journal, the interrupted row restarts
    /// from its last checkpoint. Without the flag any stale journal for
    /// the sweep is discarded and the run starts clean.
    pub resume: bool,
}

impl Cli {
    /// Parse the process arguments.
    pub fn parse() -> Cli {
        Cli::parse_from(std::env::args().skip(1))
    }

    /// Parse an explicit argument list (for tests).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Cli {
        let mut cli = Cli {
            limit: crate::DEFAULT_LIMIT,
            json: false,
            threads: crate::pool::default_threads(),
            oracle: false,
            resume: false,
        };
        let parse_count = |a: &str| a.replace('_', "").parse::<u64>().ok();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            if a == "--json" {
                cli.json = true;
            } else if a == "--oracle" {
                cli.oracle = true;
            } else if a == "--resume" {
                cli.resume = true;
            } else if a == "--threads" {
                // Consume the value token so it is not taken as a limit.
                if let Some(n) = args.next().as_deref().and_then(parse_count) {
                    cli.threads = (n as usize).max(1);
                }
            } else if let Some(v) = a.strip_prefix("--threads=") {
                if let Some(n) = parse_count(v) {
                    cli.threads = (n as usize).max(1);
                }
            } else if let Some(n) = parse_count(&a) {
                cli.limit = n;
            }
        }
        cli
    }
}

/// Wall-clock + throughput meter for one sweep, emitted as the `host`
/// block of the JSON artifact (and as a human summary line).
///
/// Construct it just before the sweep starts; it snapshots the runner
/// crate's global simulation counters so only work done during *this*
/// sweep is attributed to it.
#[derive(Debug)]
pub struct HostMeter {
    start: Instant,
    threads: usize,
    jobs0: u64,
    instructions0: u64,
}

impl HostMeter {
    /// Start metering a sweep that will run on `threads` workers.
    pub fn start(threads: usize) -> HostMeter {
        let (jobs0, instructions0) = crate::runners::meter_snapshot();
        HostMeter {
            start: Instant::now(),
            threads,
            jobs0,
            instructions0,
        }
    }

    /// Jobs run, instructions simulated, and seconds elapsed so far.
    fn sample(&self) -> (u64, u64, f64) {
        let (jobs, instructions) = crate::runners::meter_snapshot();
        (
            jobs - self.jobs0,
            instructions - self.instructions0,
            self.start.elapsed().as_secs_f64(),
        )
    }

    /// The `host` block: worker/core counts plus the sweep's wall-clock
    /// seconds, simulated instructions, and Minsts/s. Volatile by nature
    /// — artifact diffing strips this block (`Json::remove("host")`).
    pub fn host_json(&self) -> Json {
        let (jobs, instructions, wall) = self.sample();
        let mut o = Json::object();
        o.set("threads", Json::from(self.threads));
        o.set(
            "available_parallelism",
            Json::from(crate::pool::default_threads()),
        );
        o.set("jobs", Json::from(jobs));
        o.set("wall_seconds", Json::from(wall));
        o.set("simulated_instructions", Json::from(instructions));
        o.set(
            "minsts_per_sec",
            Json::from(instructions as f64 / wall.max(1e-9) / 1e6),
        );
        o
    }

    /// One human-readable line for the end of the printed report.
    pub fn summary(&self) -> String {
        let (jobs, instructions, wall) = self.sample();
        format!(
            "sweep: {jobs} jobs, {instructions} simulated instructions in {wall:.2}s \
             ({:.2} Minsts/s, {} threads)",
            instructions as f64 / wall.max(1e-9) / 1e6,
            self.threads,
        )
    }
}

/// One figure's JSON artifact under construction.
///
/// A thin wrapper over a [`Json`] object pre-seeded with the envelope
/// fields (`figure`, `schema_version`, `instruction_limit`); the caller
/// [`set`](Artifact::set)s figure-specific keys and [`write_in`](Artifact::write_in)s
/// the result to `BENCH_<figure>.json`.
#[derive(Debug)]
pub struct Artifact {
    figure: String,
    root: Json,
}

impl Artifact {
    /// Start an artifact for `figure` (e.g. `"fig11"`), recording the
    /// instruction budget it was produced with.
    pub fn new(figure: &str, limit: u64) -> Artifact {
        let mut root = Json::object();
        root.set("figure", figure.into());
        root.set("schema_version", Json::from(SCHEMA_VERSION));
        root.set("instruction_limit", Json::from(limit));
        Artifact {
            figure: figure.to_string(),
            root,
        }
    }

    /// Insert (or replace) a top-level key.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Artifact {
        self.root.set(key, value);
        self
    }

    /// The artifact body.
    pub fn json(&self) -> &Json {
        &self.root
    }

    /// The file name this artifact writes to.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.figure)
    }

    /// Write the artifact (pretty-printed, trailing newline) into `dir`,
    /// returning the path written.
    pub fn write_in(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        let mut text = self.root.to_pretty(2);
        text.push('\n');
        std::fs::write(&path, text)?;
        Ok(path)
    }

    /// Write into the current directory and print a confirmation line —
    /// the tail call of every binary's `--json` mode.
    pub fn emit(&self) {
        match self.write_in(Path::new(".")) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("error: writing {}: {e}", self.file_name()),
        }
    }
}

/// Snapshot every counter of one run as a flat JSON object keyed by the
/// canonical registry names.
pub fn counters_json(s: &SimStats) -> Json {
    StatsRegistry::from_sim(s).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn cli_defaults() {
        let c = cli(&[]);
        assert_eq!(c.limit, crate::DEFAULT_LIMIT);
        assert!(!c.json);
        assert!(!c.oracle);
        assert!(!c.resume);
        assert_eq!(c.threads, crate::pool::default_threads());
    }

    #[test]
    fn cli_resume_flag() {
        let c = cli(&["--resume", "25000", "--json"]);
        assert!(c.resume);
        assert!(c.json);
        assert_eq!(c.limit, 25_000);
    }

    #[test]
    fn cli_oracle_flag() {
        let c = cli(&["--oracle", "30000"]);
        assert!(c.oracle);
        assert_eq!(c.limit, 30_000);
    }

    #[test]
    fn cli_orders_and_separators() {
        assert_eq!(cli(&["40000", "--json"]), cli(&["--json", "40_000"]));
        let c = cli(&["--json", "1_000_000"]);
        assert_eq!(c.limit, 1_000_000);
        assert!(c.json);
    }

    #[test]
    fn cli_threads_value_is_not_a_limit() {
        // The value token after --threads must not be parsed as a budget.
        let c = cli(&["--threads", "4", "20000"]);
        assert_eq!(c.threads, 4);
        assert_eq!(c.limit, 20_000);
        let c = cli(&["20000", "--threads=2"]);
        assert_eq!(c.threads, 2);
        assert_eq!(c.limit, 20_000);
        // Zero clamps to one worker.
        assert_eq!(cli(&["--threads", "0"]).threads, 1);
    }

    #[test]
    fn cli_ignores_unknown_words() {
        let c = cli(&["bogus"]);
        assert_eq!(c.limit, crate::DEFAULT_LIMIT);
        assert!(!c.json);
    }

    #[test]
    fn artifact_envelope_and_write() {
        let mut a = Artifact::new("figtest", 40_000);
        a.set("answer", Json::from(42u64));
        assert_eq!(a.json().get("figure"), Some(&Json::from("figtest")));
        assert_eq!(a.json().get("instruction_limit"), Some(&Json::Int(40_000)));
        let dir = std::env::temp_dir();
        let path = a.write_in(&dir).expect("artifact written");
        assert_eq!(path, dir.join("BENCH_figtest.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with("}\n"));
        assert!(text.contains("\"schema_version\": 1"));
        assert!(text.contains("\"answer\": 42"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn counters_snapshot_is_flat() {
        let s = SimStats {
            cycles: 7,
            ..Default::default()
        };
        let j = counters_json(&s);
        assert_eq!(j.get("cycles"), Some(&Json::Int(7)));
        assert_eq!(j.get("lsq_full_stalls"), Some(&Json::Int(0)));
    }
}
