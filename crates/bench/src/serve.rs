//! `popk serve` — the persistent simulation service.
//!
//! A zero-dependency, long-running daemon speaking line-delimited JSON
//! over TCP. Clients submit (workload × config × budget × seed) jobs;
//! the server answers from the content-addressed [`ArtifactCache`] when
//! it can and otherwise fans the work across a bounded job queue feeding
//! a fixed worker pool. Running jobs stream progress events bridged from
//! the simulator's [`TraceSink`] layer, honour the deadlock watchdog,
//! and are cooperatively canceled when every subscriber disconnects.
//!
//! ## Wire protocol (v[`PROTOCOL_VERSION`])
//!
//! One JSON object per line in each direction; requests carry an `op`
//! and an optional `tag` that is echoed on every response concerning
//! them. Ops: `ping`, `submit`, `compare`, `stats`, `shutdown`.
//! Responses carry a `type`: `pong`, `accepted`, `progress`, `result`,
//! `compare`, `stats`, `shutdown`, or `error` (with a stable `kind` —
//! the [`SimError::kind`] taxonomy plus the transport-level kinds
//! `bad_request`, `unknown_workload`, `unknown_config`, `backpressure`,
//! `not_cached`, and `panic`). The full schema is documented in
//! `EXPERIMENTS.md`.
//!
//! ## Soundness
//!
//! The simulator is a pure function of (program, config, budget), so a
//! cache entry is byte-for-byte the artifact a fresh run would produce;
//! the e2e suite (`tests/serve_e2e.rs`) pins this. Identity comes from
//! [`JobKey`] ([`MachineConfig::fingerprint`] + workload + seed +
//! budget); concurrent submitters of one key share a single simulation.

use crate::cache::{ArtifactCache, JobKey};
use crate::{pool, runners};
use popk_core::{Json, MachineConfig, SimError, SimStats, Simulator, TraceEvent, TraceSink};
use popk_workloads::by_name;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Wire-protocol version, reported by `ping` and `stats`. Bump on any
/// incompatible request/response shape change.
pub const PROTOCOL_VERSION: u64 = 1;

/// How often idle loops (accept, worker receive, connection read) check
/// the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity; a submit finding it full is rejected
    /// with a `backpressure` error rather than buffered without bound.
    pub queue_capacity: usize,
    /// Root directory of the artifact cache.
    pub cache_dir: PathBuf,
    /// Committed instructions between `progress` events on jobs
    /// subscribed with `"events": true`.
    pub progress_interval: u64,
    /// Largest accepted per-job instruction budget.
    pub max_limit: u64,
}

impl ServeConfig {
    /// Defaults: all cores, a 64-job queue, progress every 5000
    /// instructions, budgets up to 10 M.
    pub fn new(addr: &str, cache_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: addr.to_string(),
            workers: pool::default_threads(),
            queue_capacity: 64,
            cache_dir: cache_dir.into(),
            progress_interval: 5_000,
            max_limit: 10_000_000,
        }
    }
}

// ---- connections -----------------------------------------------------------

/// The write half of one client connection, shared between the accept
/// thread (request handling) and workers (job responses). Whole lines
/// are written under the mutex, so concurrent responders never
/// interleave bytes; a failed write marks the connection dead, which
/// job progress uses to cancel abandoned work.
struct Conn {
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl Conn {
    fn send(&self, j: &Json) {
        let mut line = j.to_string();
        line.push('\n');
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if w.write_all(line.as_bytes()).is_err() {
            self.alive.store(false, Ordering::Relaxed);
        }
    }

    fn alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }
}

/// One submitter of a job: where to respond, how to label it, and
/// whether it wants the progress stream.
struct Subscriber {
    conn: Arc<Conn>,
    tag: Option<String>,
    events: bool,
}

// ---- jobs ------------------------------------------------------------------

/// One queued or running simulation and everyone waiting on it.
struct Job {
    key: JobKey,
    digest: String,
    cfg: MachineConfig,
    subs: Mutex<Vec<Subscriber>>,
    /// Raised when every subscriber's connection has died; the simulator
    /// polls it through [`Simulator::set_cancel`].
    cancel: Arc<AtomicBool>,
}

impl Job {
    /// Stream a progress line to event subscribers; if no subscriber's
    /// connection is still alive, raise the cancel flag instead — the
    /// result would be unobservable.
    fn progress(&self, committed: u64, cycle: u64) {
        let subs = self
            .subs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !subs.iter().any(|s| s.conn.alive()) {
            self.cancel.store(true, Ordering::Relaxed);
            return;
        }
        for sub in subs.iter().filter(|s| s.events && s.conn.alive()) {
            let mut j = Json::object();
            j.set("type", "progress".into());
            set_tag(&mut j, &sub.tag);
            j.set("digest", self.digest.as_str().into());
            j.set("committed", Json::from(committed));
            j.set("cycle", Json::from(cycle));
            sub.conn.send(&j);
        }
    }
}

/// Bridges the simulator's event stream to job progress: counts
/// commits and reports every `interval`.
struct ProgressSink<'a> {
    job: &'a Job,
    interval: u64,
    committed: u64,
    next_report: u64,
}

impl TraceSink for ProgressSink<'_> {
    fn event(&mut self, cycle: u64, ev: &TraceEvent) {
        if let TraceEvent::Committed { .. } = ev {
            self.committed += 1;
            if self.committed >= self.next_report {
                self.next_report = self.committed + self.interval;
                self.job.progress(self.committed, cycle);
            }
        }
    }
}

// ---- shared server state ---------------------------------------------------

struct Shared {
    cache: ArtifactCache,
    queue: SyncSender<Arc<Job>>,
    /// Jobs queued or running, by digest. Invariant: a submit handler
    /// consults the cache *under this lock*, and a worker stores to the
    /// cache *before* removing its job here — so a key is always either
    /// inflight (attach) or, once absent, fully readable from the cache.
    inflight: Mutex<HashMap<String, Arc<Job>>>,
    shutdown: AtomicBool,
    queue_capacity: usize,
    progress_interval: u64,
    max_limit: u64,
    // Service counters, reported by the `stats` op.
    submitted: AtomicU64,
    cache_hits: AtomicU64,
    attached: AtomicU64,
    simulations: AtomicU64,
    job_errors: AtomicU64,
    queue_depth: AtomicU64,
}

// ---- the server ------------------------------------------------------------

/// A running `popk serve` daemon: accept loop plus worker pool.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. Returns once the listener is live (the
    /// returned server is immediately connectable on
    /// [`local_addr`](Server::local_addr)).
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
        let shared = Arc::new(Shared {
            cache: ArtifactCache::new(cfg.cache_dir),
            queue: tx,
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            queue_capacity: cfg.queue_capacity.max(1),
            progress_interval: cfg.progress_interval.max(1),
            max_limit: cfg.max_limit,
            submitted: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            attached: AtomicU64::new(0),
            simulations: AtomicU64::new(0),
            job_errors: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
        });
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::new();
        for _ in 0..cfg.workers.max(1) {
            let shared = shared.clone();
            let rx = rx.clone();
            threads.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }
        {
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || accept_loop(&shared, &listener)));
        }
        Ok(Server {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves the ephemeral port of `":0"` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask every server thread to stop. Returns immediately; pair with
    /// [`join`](Server::join) to wait for them.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Wait for the accept loop and workers to exit (after
    /// [`shutdown`](Server::shutdown), within one poll interval).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                std::thread::spawn(move || handle_conn(&shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

// ---- per-connection request handling ---------------------------------------

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    // Short read timeouts let the thread notice server shutdown while
    // idle; a timed-out `read_line` keeps its partial bytes in `line`,
    // so slow writers still get whole lines handled.
    let _ = stream.set_read_timeout(Some(POLL));
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(Conn {
        writer: Mutex::new(writer),
        alive: AtomicBool::new(true),
    });
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while conn.alive() && !shared.shutdown.load(Ordering::Relaxed) {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !line.trim().is_empty() {
                    handle_line(shared, &conn, line.trim());
                }
                line.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
    conn.alive.store(false, Ordering::Relaxed);
}

fn set_tag(j: &mut Json, tag: &Option<String>) {
    if let Some(t) = tag {
        j.set("tag", t.as_str().into());
    }
}

fn send_error(conn: &Conn, tag: &Option<String>, kind: &str, message: &str) {
    let mut j = Json::object();
    j.set("type", "error".into());
    set_tag(j.set("kind", kind.into()), tag);
    j.set("message", message.into());
    conn.send(&j);
}

fn handle_line(shared: &Arc<Shared>, conn: &Arc<Conn>, line: &str) {
    let req = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            send_error(
                conn,
                &None,
                "bad_request",
                &format!("unparseable request: {e}"),
            );
            return;
        }
    };
    let tag = req.get("tag").and_then(Json::as_str).map(str::to_string);
    match req.get("op").and_then(Json::as_str) {
        Some("ping") => {
            let mut j = Json::object();
            j.set("type", "pong".into());
            j.set("protocol", Json::from(PROTOCOL_VERSION));
            set_tag(&mut j, &tag);
            conn.send(&j);
        }
        Some("submit") => handle_submit(shared, conn, &req, tag),
        Some("compare") => handle_compare(shared, conn, &req, tag),
        Some("stats") => conn.send(&stats_json(shared, &tag)),
        Some("shutdown") => {
            let mut j = Json::object();
            j.set("type", "shutdown".into());
            set_tag(&mut j, &tag);
            conn.send(&j);
            shared.shutdown.store(true, Ordering::Relaxed);
        }
        Some(other) => send_error(conn, &tag, "bad_request", &format!("unknown op `{other}`")),
        None => send_error(conn, &tag, "bad_request", "missing `op`"),
    }
}

/// Decode a job spec — `workload`, optional `config` (a `parse_config`
/// name), optional `overrides`, `limit`, `seed` — into a [`JobKey`] and
/// the fully-resolved configuration. `Err` is (error kind, message).
fn parse_job_spec(
    shared: &Shared,
    spec: &Json,
) -> Result<(JobKey, MachineConfig), (String, String)> {
    let bad = |m: &str| Err(("bad_request".to_string(), m.to_string()));
    let Some(workload) = spec.get("workload").and_then(Json::as_str) else {
        return bad("missing `workload`");
    };
    if by_name(workload).is_none() {
        return Err((
            "unknown_workload".to_string(),
            format!("unknown workload `{workload}`"),
        ));
    }
    let config_name = spec
        .get("config")
        .and_then(Json::as_str)
        .unwrap_or("slice2");
    let Some(mut cfg) = runners::parse_config(config_name) else {
        return Err((
            "unknown_config".to_string(),
            format!("unknown config `{config_name}` (try: ideal simple2 slice2 slice2-3 ext2 …)"),
        ));
    };
    if let Some(ov) = spec.get("overrides") {
        if let Err(m) = apply_overrides(&mut cfg, ov) {
            return bad(&m);
        }
    }
    let limit = spec
        .get("limit")
        .and_then(Json::as_u64)
        .unwrap_or(runners::DEFAULT_LIMIT);
    if limit == 0 || limit > shared.max_limit {
        return bad(&format!(
            "`limit` must be in 1..={} (got {limit})",
            shared.max_limit
        ));
    }
    let seed = spec.get("seed").and_then(Json::as_u64).unwrap_or(0);
    Ok((JobKey::new(workload, config_name, &cfg, seed, limit), cfg))
}

/// Apply the whitelisted machine-config overrides of a job spec. The
/// resulting config participates in the fingerprint, so overridden jobs
/// cache under their own keys.
fn apply_overrides(cfg: &mut MachineConfig, ov: &Json) -> Result<(), String> {
    let Json::Object(pairs) = ov else {
        return Err("`overrides` must be an object".to_string());
    };
    for (k, v) in pairs {
        let num = || {
            v.as_u64()
                .ok_or_else(|| format!("override `{k}` must be a non-negative integer"))
        };
        match k.as_str() {
            "width" => cfg.width = num()? as u32,
            "ruu_size" => cfg.ruu_size = num()? as usize,
            "lsq_size" => cfg.lsq_size = num()? as usize,
            "mem_ports" => cfg.mem_ports = num()? as u32,
            "int_alus" => cfg.int_alus = num()? as u32,
            "watchdog" => cfg.watchdog = num()?,
            "oracle" => {
                cfg.oracle = v
                    .as_bool()
                    .ok_or_else(|| "override `oracle` must be a boolean".to_string())?;
            }
            other => return Err(format!("unknown override `{other}`")),
        }
    }
    Ok(())
}

fn key_json(key: &JobKey) -> Json {
    let mut j = Json::object();
    j.set("workload", key.workload.as_str().into());
    j.set("config", key.config_name.as_str().into());
    j.set("config_hash", format!("{:016x}", key.config_hash).into());
    j.set("seed", Json::from(key.seed));
    j.set("limit", Json::from(key.limit));
    j
}

fn send_accepted(conn: &Conn, tag: &Option<String>, key: &JobKey, digest: &str) {
    let mut j = Json::object();
    j.set("type", "accepted".into());
    set_tag(&mut j, tag);
    j.set("digest", digest.into());
    j.set("key", key_json(key));
    conn.send(&j);
}

fn send_result(conn: &Conn, tag: &Option<String>, cached: bool, digest: &str, body: &str) {
    let Ok(artifact) = Json::parse(body) else {
        // Unreachable for bodies we just built or verified; fail loud
        // rather than serve garbage if it ever regresses.
        send_error(conn, tag, "internal", "artifact body failed to parse");
        return;
    };
    let mut j = Json::object();
    j.set("type", "result".into());
    set_tag(&mut j, tag);
    j.set("cached", Json::from(cached));
    j.set("digest", digest.into());
    j.set("artifact", artifact);
    conn.send(&j);
}

fn handle_submit(shared: &Arc<Shared>, conn: &Arc<Conn>, req: &Json, tag: Option<String>) {
    let (key, cfg) = match parse_job_spec(shared, req) {
        Ok(v) => v,
        Err((kind, message)) => {
            send_error(conn, &tag, &kind, &message);
            return;
        }
    };
    let events = req.get("events").and_then(Json::as_bool).unwrap_or(false);
    let digest = key.digest();
    shared.submitted.fetch_add(1, Ordering::Relaxed);
    let sub = Subscriber {
        conn: conn.clone(),
        tag: tag.clone(),
        events,
    };

    // The attach / cache-read / enqueue decision happens entirely under
    // the inflight lock (see the invariant on [`Shared::inflight`]), so
    // two submitters of one key can never both start a simulation, and
    // a key absent from the map is guaranteed complete on disk.
    let mut inflight = shared
        .inflight
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(job) = inflight.get(&digest) {
        job.subs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(sub);
        shared.attached.fetch_add(1, Ordering::Relaxed);
        send_accepted(conn, &tag, &key, &digest);
        return;
    }
    if let Some(body) = shared.cache.lookup(&key) {
        drop(inflight);
        shared.cache_hits.fetch_add(1, Ordering::Relaxed);
        send_accepted(conn, &tag, &key, &digest);
        send_result(conn, &tag, true, &digest, &body);
        return;
    }
    let job = Arc::new(Job {
        key: key.clone(),
        digest: digest.clone(),
        cfg,
        subs: Mutex::new(vec![sub]),
        cancel: Arc::new(AtomicBool::new(false)),
    });
    match shared.queue.try_send(job.clone()) {
        Ok(()) => {
            shared.queue_depth.fetch_add(1, Ordering::Relaxed);
            inflight.insert(digest.clone(), job);
            // Send `accepted` before releasing the lock: a worker
            // cannot deliver this job's result until it can remove the
            // digest from the map, so responses stay ordered.
            send_accepted(conn, &tag, &key, &digest);
        }
        Err(TrySendError::Full(_)) => {
            drop(inflight);
            send_error(
                conn,
                &tag,
                "backpressure",
                &format!(
                    "job queue is full ({} pending); retry later",
                    shared.queue_capacity
                ),
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            drop(inflight);
            send_error(conn, &tag, "shutdown", "server is shutting down");
        }
    }
}

fn handle_compare(shared: &Arc<Shared>, conn: &Arc<Conn>, req: &Json, tag: Option<String>) {
    let mut sides = Vec::new();
    for side in ["a", "b"] {
        let Some(spec) = req.get(side) else {
            send_error(conn, &tag, "bad_request", &format!("missing side `{side}`"));
            return;
        };
        let key = match parse_job_spec(shared, spec) {
            Ok((key, _)) => key,
            Err((kind, message)) => {
                send_error(conn, &tag, &kind, &format!("side `{side}`: {message}"));
                return;
            }
        };
        let Some(body) = shared.cache.lookup(&key) else {
            send_error(
                conn,
                &tag,
                "not_cached",
                &format!(
                    "side `{side}` ({}) is not cached; submit it first",
                    key.digest()
                ),
            );
            return;
        };
        let Ok(parsed) = Json::parse(&body) else {
            send_error(conn, &tag, "internal", "cached body failed to parse");
            return;
        };
        sides.push((key, parsed));
    }
    let (key_b, body_b) = sides.pop().expect("two sides pushed");
    let (key_a, body_a) = sides.pop().expect("two sides pushed");
    let ipc = |b: &Json| b.get("ipc").and_then(Json::as_f64).unwrap_or(0.0);
    let (ipc_a, ipc_b) = (ipc(&body_a), ipc(&body_b));

    // Counter-by-counter diff of the stats blocks.
    let mut differing = Vec::new();
    if let (Some(Json::Object(sa)), Some(Json::Object(sb))) =
        (body_a.get("stats"), body_b.get("stats"))
    {
        for (name, va) in sa {
            let vb = sb.iter().find(|(n, _)| n == name).map(|(_, v)| v);
            if vb != Some(va) {
                let mut d = Json::object();
                d.set("counter", name.as_str().into());
                d.set("a", va.clone());
                d.set("b", vb.cloned().unwrap_or(Json::Null));
                differing.push(d);
            }
        }
    }

    let mut j = Json::object();
    j.set("type", "compare".into());
    set_tag(&mut j, &tag);
    j.set("a", key_json(&key_a));
    j.set("b", key_json(&key_b));
    j.set("ipc_a", Json::from(ipc_a));
    j.set("ipc_b", Json::from(ipc_b));
    j.set(
        "ipc_ratio",
        Json::from(if ipc_b > 0.0 { ipc_a / ipc_b } else { 0.0 }),
    );
    j.set("differing_counters", Json::Array(differing));
    conn.send(&j);
}

fn stats_json(shared: &Shared, tag: &Option<String>) -> Json {
    let (meter_jobs, meter_instructions) = runners::meter_snapshot();
    let mut j = Json::object();
    j.set("type", "stats".into());
    set_tag(&mut j, tag);
    j.set("protocol", Json::from(PROTOCOL_VERSION));
    j.set(
        "submitted",
        Json::from(shared.submitted.load(Ordering::Relaxed)),
    );
    j.set(
        "cache_hits",
        Json::from(shared.cache_hits.load(Ordering::Relaxed)),
    );
    j.set(
        "attached",
        Json::from(shared.attached.load(Ordering::Relaxed)),
    );
    j.set(
        "simulations",
        Json::from(shared.simulations.load(Ordering::Relaxed)),
    );
    j.set(
        "job_errors",
        Json::from(shared.job_errors.load(Ordering::Relaxed)),
    );
    j.set(
        "queue_depth",
        Json::from(shared.queue_depth.load(Ordering::Relaxed)),
    );
    j.set("meter_jobs", Json::from(meter_jobs));
    j.set("meter_instructions", Json::from(meter_instructions));
    j
}

// ---- workers ---------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Arc<Job>>>>) {
    loop {
        let msg = {
            let rx = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv_timeout(Duration::from_millis(100))
        };
        match msg {
            Ok(job) => {
                shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                run_job(shared, &job);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Execute one job end to end: simulate (panic-isolated), persist the
/// artifact, retire the inflight entry, and answer every subscriber.
fn run_job(shared: &Shared, job: &Job) {
    let outcome = catch_unwind(AssertUnwindSafe(|| simulate_job(shared, job)));
    let result: Result<String, Json> = match outcome {
        Ok(Ok(stats)) => {
            let body = ArtifactCache::job_body(&job.key, &stats);
            // A failed store (disk full, unwritable root) is not fatal:
            // the fresh body is still served, the key just misses next
            // time and re-simulates.
            let _ = shared.cache.store(&job.key, &body);
            shared.simulations.fetch_add(1, Ordering::Relaxed);
            runners::meter_record(stats.committed);
            Ok(body)
        }
        Ok(Err(e)) => {
            shared.job_errors.fetch_add(1, Ordering::Relaxed);
            Err(e.to_wire_json())
        }
        Err(payload) => {
            shared.job_errors.fetch_add(1, Ordering::Relaxed);
            let mut j = Json::object();
            j.set("kind", "panic".into());
            j.set(
                "message",
                format!("job panicked: {}", pool::panic_message(payload.as_ref())).into(),
            );
            Err(j)
        }
    };
    // Cache write (above) strictly precedes inflight removal, upholding
    // the lookup invariant; removal strictly precedes responses, so a
    // client that sees a result can immediately cache-hit or compare.
    shared
        .inflight
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .remove(&job.digest);
    let subs: Vec<Subscriber> = std::mem::take(
        &mut *job
            .subs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    for sub in subs {
        match &result {
            Ok(body) => send_result(&sub.conn, &sub.tag, false, &job.digest, body),
            Err(e) => {
                let mut j = e.clone();
                j.set("type", "error".into());
                set_tag(&mut j, &sub.tag);
                j.set("digest", job.digest.as_str().into());
                sub.conn.send(&j);
            }
        }
    }
}

/// The simulation itself, on the worker thread: always under a
/// [`ProgressSink`] (whether or not anyone subscribed to events), so a
/// job's timing behaviour — and therefore its artifact — is independent
/// of who is watching.
fn simulate_job(shared: &Shared, job: &Job) -> Result<SimStats, SimError> {
    runners::poison_check(&job.key.workload);
    job.cfg.validate()?;
    let w = by_name(&job.key.workload).expect("workload validated at submit");
    let program = w.program();
    let mut sim = Simulator::with_sink(
        &job.cfg,
        ProgressSink {
            job,
            interval: shared.progress_interval,
            committed: 0,
            next_report: shared.progress_interval,
        },
    );
    sim.set_cancel(job.cancel.clone());
    sim.try_run(&program, job.key.limit)
}

// ---- client ----------------------------------------------------------------

/// A minimal line-JSON client for the serve protocol, used by the
/// `serve client` subcommand and the e2e tests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line.
    pub fn send(&mut self, req: &Json) -> io::Result<()> {
        let mut line = req.to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    /// Read the next response line (blocks; `UnexpectedEof` when the
    /// server closes the connection).
    pub fn recv(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Send `req` and read one response.
    pub fn request(&mut self, req: &Json) -> io::Result<Json> {
        self.send(req)?;
        self.recv()
    }

    /// Read responses until one of `types` (or `error`) arrives,
    /// returning it plus every line seen before it — the pattern for
    /// consuming a `submit`'s `accepted`/`progress` stream.
    pub fn recv_until(&mut self, types: &[&str]) -> io::Result<(Json, Vec<Json>)> {
        let mut seen = Vec::new();
        loop {
            let j = self.recv()?;
            let t = j.get("type").and_then(Json::as_str).unwrap_or("");
            if types.contains(&t) || t == "error" {
                return Ok((j, seen));
            }
            seen.push(j);
        }
    }
}
