//! `popk serve` — the persistent simulation service.
//!
//! A zero-dependency, long-running daemon speaking line-delimited JSON
//! over TCP. Clients submit (workload × config × budget × seed) jobs;
//! the server answers from the content-addressed [`ArtifactCache`] when
//! it can and otherwise fans the work across a bounded job queue feeding
//! a fixed worker pool. Running jobs stream progress events bridged from
//! the simulator's [`TraceSink`] layer, honour the deadlock watchdog,
//! and are cooperatively canceled when every subscriber disconnects.
//!
//! ## Wire protocol (v[`PROTOCOL_VERSION`])
//!
//! One JSON object per line in each direction; requests carry an `op`
//! and an optional `tag` that is echoed on every response concerning
//! them. Ops: `ping`, `submit`, `compare`, `stats`, `shutdown`.
//! Responses carry a `type`: `pong`, `accepted`, `progress`, `result`,
//! `compare`, `stats`, `shutdown`, or `error` (with a stable `kind` —
//! the [`SimError::kind`] taxonomy plus the transport-level kinds
//! `bad_request`, `unknown_workload`, `unknown_config`, `backpressure`,
//! `not_cached`, and `panic`). The full schema is documented in
//! `EXPERIMENTS.md`.
//!
//! ## Soundness
//!
//! The simulator is a pure function of (program, config, budget), so a
//! cache entry is byte-for-byte the artifact a fresh run would produce;
//! the e2e suite (`tests/serve_e2e.rs`) pins this. Identity comes from
//! [`JobKey`] ([`MachineConfig::fingerprint`] + workload + seed +
//! budget); concurrent submitters of one key share a single simulation.

use crate::cache::{ArtifactCache, JobKey};
use crate::journal::{seal_line, verify_line};
use crate::{pool, runners};
use popk_core::{Json, MachineConfig, SimError, SimStats, Simulator, TraceEvent, TraceSink};
use popk_workloads::by_name;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Wire-protocol version, reported by `ping` and `stats`. Bump on any
/// incompatible request/response shape change.
pub const PROTOCOL_VERSION: u64 = 1;

/// How often idle loops (accept, worker receive, connection read) check
/// the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity; a submit finding it full is rejected
    /// with a `backpressure` error rather than buffered without bound.
    pub queue_capacity: usize,
    /// Root directory of the artifact cache.
    pub cache_dir: PathBuf,
    /// Committed instructions between `progress` events on jobs
    /// subscribed with `"events": true`.
    pub progress_interval: u64,
    /// Largest accepted per-job instruction budget.
    pub max_limit: u64,
    /// Replay `serve.journal` on startup, re-enqueueing jobs that were
    /// accepted but not finished before the previous process died.
    pub recover: bool,
    /// Artifact-cache size cap in bytes; `None` is unbounded. When a
    /// store pushes the cache past the cap, the least-recently-used
    /// entries (oldest mtime first) are evicted back under it.
    pub cache_max_bytes: Option<u64>,
}

impl ServeConfig {
    /// Defaults: all cores, a 64-job queue, progress every 5000
    /// instructions, budgets up to 10 M, recovery on, unbounded cache.
    pub fn new(addr: &str, cache_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: addr.to_string(),
            workers: pool::default_threads(),
            queue_capacity: 64,
            cache_dir: cache_dir.into(),
            progress_interval: 5_000,
            max_limit: 10_000_000,
            recover: true,
            cache_max_bytes: None,
        }
    }
}

// ---- the service journal ---------------------------------------------------

/// Write-ahead journal of accepted jobs (`<cache_dir>/serve.journal`),
/// giving the daemon crash recovery: a `job` line (digest + the spec
/// needed to rebuild it) is appended before a fresh job is enqueued and
/// a `done` line when it finishes, each individually sealed with the
/// [`crate::journal`] line format. On startup the journal is replayed —
/// stopping at the first unverifiable (torn or tampered) line — and
/// every job without a matching `done` is re-enqueued as a *detached*
/// job: simulated for the cache with nobody subscribed, so interrupted
/// work completes even though its submitters are gone.
///
/// An unwritable cache directory degrades the journal to advisory mode
/// (lines are dropped with a warning) rather than failing submits —
/// matching the cache's own degraded mode.
struct ServeJournal {
    path: PathBuf,
    file: Mutex<Option<File>>,
}

impl ServeJournal {
    /// Open the journal under `cache_root`, replaying (when `recover`)
    /// and compacting it. Returns the journal plus the specs of jobs
    /// recorded as accepted but never finished.
    fn open(cache_root: &Path, recover: bool) -> (ServeJournal, Vec<Json>) {
        let path = cache_root.join("serve.journal");
        let mut pending: Vec<(String, Json)> = Vec::new();
        if recover {
            if let Ok(text) = std::fs::read_to_string(&path) {
                for line in text.lines() {
                    let Some(j) = verify_line(line) else { break };
                    let Some(digest) = j.get("digest").and_then(Json::as_str) else {
                        break;
                    };
                    match j.get("op").and_then(Json::as_str) {
                        Some("job") => {
                            if let Some(spec) = j.get("spec") {
                                pending.retain(|(d, _)| d != digest);
                                pending.push((digest.to_string(), spec.clone()));
                            }
                        }
                        Some("done") => pending.retain(|(d, _)| d != digest),
                        _ => break,
                    }
                }
            }
        }
        // Compact: rewrite only the still-pending jobs (or truncate the
        // stale journal entirely when not recovering).
        let _ = std::fs::create_dir_all(cache_root);
        let file = match File::create(&path) {
            Ok(mut f) => {
                let mut ok = true;
                for (digest, spec) in &pending {
                    let line = seal_line(Self::job_line(digest, spec));
                    if writeln!(f, "{line}").is_err() {
                        ok = false;
                        break;
                    }
                }
                let _ = f.flush();
                ok.then_some(f)
            }
            Err(e) => {
                eprintln!(
                    "warning: serve journal {} is unwritable ({e}); \
                     recovery disabled for this run",
                    path.display()
                );
                None
            }
        };
        (
            ServeJournal {
                path,
                file: Mutex::new(file),
            },
            pending.into_iter().map(|(_, spec)| spec).collect(),
        )
    }

    fn job_line(digest: &str, spec: &Json) -> Json {
        let mut j = Json::object();
        j.set("op", "job".into());
        j.set("digest", digest.into());
        j.set("spec", spec.clone());
        j
    }

    fn append(&self, j: Json) {
        let mut guard = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(f) = guard.as_mut() {
            let line = seal_line(j);
            if writeln!(f, "{line}").and_then(|()| f.flush()).is_err() {
                eprintln!(
                    "warning: serve journal {} stopped accepting writes; \
                     continuing without recovery",
                    self.path.display()
                );
                *guard = None;
            }
        }
    }

    /// Record a job accepted for simulation (append before enqueue).
    fn record_job(&self, digest: &str, spec: &Json) {
        self.append(Self::job_line(digest, spec));
    }

    /// Record a job finished (simulated, errored, or panicked — any
    /// outcome that answered the submitters and retired the job).
    fn record_done(&self, digest: &str) {
        let mut j = Json::object();
        j.set("op", "done".into());
        j.set("digest", digest.into());
        self.append(j);
    }
}

/// Reduce a submit request to the spec fields that identify the job —
/// what the journal persists, and what recovery replays through
/// [`parse_job_spec`] again.
fn journal_spec(req: &Json) -> Json {
    let mut spec = Json::object();
    for key in ["workload", "config", "overrides", "limit", "seed"] {
        if let Some(v) = req.get(key) {
            spec.set(key, v.clone());
        }
    }
    spec
}

// ---- connections -----------------------------------------------------------

/// The write half of one client connection, shared between the accept
/// thread (request handling) and workers (job responses). Whole lines
/// are written under the mutex, so concurrent responders never
/// interleave bytes; a failed write marks the connection dead, which
/// job progress uses to cancel abandoned work.
struct Conn {
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl Conn {
    fn send(&self, j: &Json) {
        let mut line = j.to_string();
        line.push('\n');
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if w.write_all(line.as_bytes()).is_err() {
            self.alive.store(false, Ordering::Relaxed);
        }
    }

    fn alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }
}

/// One submitter of a job: where to respond, how to label it, and
/// whether it wants the progress stream.
struct Subscriber {
    conn: Arc<Conn>,
    tag: Option<String>,
    events: bool,
}

// ---- jobs ------------------------------------------------------------------

/// One queued or running simulation and everyone waiting on it.
struct Job {
    key: JobKey,
    digest: String,
    cfg: MachineConfig,
    subs: Mutex<Vec<Subscriber>>,
    /// Raised when every subscriber's connection has died; the simulator
    /// polls it through [`Simulator::set_cancel`].
    cancel: Arc<AtomicBool>,
    /// A recovered job replayed from the journal: it has no subscribers
    /// by construction and runs to completion for the cache's benefit,
    /// so the no-live-subscriber cancellation does not apply.
    detached: bool,
}

impl Job {
    /// Stream a progress line to event subscribers; if no subscriber's
    /// connection is still alive, raise the cancel flag instead — the
    /// result would be unobservable.
    fn progress(&self, committed: u64, cycle: u64) {
        let subs = self
            .subs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !self.detached && !subs.iter().any(|s| s.conn.alive()) {
            self.cancel.store(true, Ordering::Relaxed);
            return;
        }
        for sub in subs.iter().filter(|s| s.events && s.conn.alive()) {
            let mut j = Json::object();
            j.set("type", "progress".into());
            set_tag(&mut j, &sub.tag);
            j.set("digest", self.digest.as_str().into());
            j.set("committed", Json::from(committed));
            j.set("cycle", Json::from(cycle));
            sub.conn.send(&j);
        }
    }
}

/// Bridges the simulator's event stream to job progress: counts
/// commits and reports every `interval`.
struct ProgressSink<'a> {
    job: &'a Job,
    interval: u64,
    committed: u64,
    next_report: u64,
}

impl TraceSink for ProgressSink<'_> {
    fn event(&mut self, cycle: u64, ev: &TraceEvent) {
        if let TraceEvent::Committed { .. } = ev {
            self.committed += 1;
            if self.committed >= self.next_report {
                self.next_report = self.committed + self.interval;
                self.job.progress(self.committed, cycle);
            }
        }
    }
}

// ---- shared server state ---------------------------------------------------

struct Shared {
    cache: ArtifactCache,
    queue: SyncSender<Arc<Job>>,
    /// Jobs queued or running, by digest. Invariant: a submit handler
    /// consults the cache *under this lock*, and a worker stores to the
    /// cache *before* removing its job here — so a key is always either
    /// inflight (attach) or, once absent, fully readable from the cache.
    inflight: Mutex<HashMap<String, Arc<Job>>>,
    journal: ServeJournal,
    shutdown: AtomicBool,
    /// Draining: new submits are rejected, queued work keeps running; a
    /// monitor thread flips [`Shared::shutdown`] once nothing is inflight.
    draining: AtomicBool,
    /// The cache directory failed its startup writability probe: the
    /// daemon serves cache-less (every job re-simulates) with a warning
    /// instead of refusing to start.
    cache_degraded: bool,
    queue_capacity: usize,
    progress_interval: u64,
    max_limit: u64,
    // Service counters, reported by the `stats` op.
    submitted: AtomicU64,
    cache_hits: AtomicU64,
    attached: AtomicU64,
    simulations: AtomicU64,
    job_errors: AtomicU64,
    queue_depth: AtomicU64,
    recovered: AtomicU64,
}

// ---- the server ------------------------------------------------------------

/// A running `popk serve` daemon: accept loop plus worker pool.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. Returns once the listener is live (the
    /// returned server is immediately connectable on
    /// [`local_addr`](Server::local_addr)).
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
        let cache_degraded = !cache_dir_writable(&cfg.cache_dir);
        if cache_degraded {
            eprintln!(
                "warning: cache directory {} is unwritable; serving cache-less \
                 (every job re-simulates, results are not persisted)",
                cfg.cache_dir.display()
            );
        }
        let (journal, pending) = ServeJournal::open(&cfg.cache_dir, cfg.recover && !cache_degraded);
        let shared = Arc::new(Shared {
            cache: ArtifactCache::with_capacity(cfg.cache_dir, cfg.cache_max_bytes),
            queue: tx,
            inflight: Mutex::new(HashMap::new()),
            journal,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            cache_degraded,
            queue_capacity: cfg.queue_capacity.max(1),
            progress_interval: cfg.progress_interval.max(1),
            max_limit: cfg.max_limit,
            submitted: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            attached: AtomicU64::new(0),
            simulations: AtomicU64::new(0),
            job_errors: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
        });
        recover_jobs(&shared, &pending);
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::new();
        for _ in 0..cfg.workers.max(1) {
            let shared = shared.clone();
            let rx = rx.clone();
            threads.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }
        {
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || accept_loop(&shared, &listener)));
        }
        Ok(Server {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves the ephemeral port of `":0"` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask every server thread to stop. Returns immediately; pair with
    /// [`join`](Server::join) to wait for them.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Wait for the accept loop and workers to exit (after
    /// [`shutdown`](Server::shutdown), within one poll interval).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Can we actually persist artifacts under `dir`? Probed once at
/// startup by creating and removing a marker file, so an unwritable
/// cache degrades the daemon loudly at boot instead of silently on the
/// first store.
fn cache_dir_writable(dir: &Path) -> bool {
    if std::fs::create_dir_all(dir).is_err() {
        return false;
    }
    let probe = dir.join(format!(".probe.{}", std::process::id()));
    let ok = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&probe)
        .is_ok();
    let _ = std::fs::remove_file(&probe);
    ok
}

/// Re-enqueue journal-recovered job specs as detached jobs. A spec that
/// no longer parses (workload renamed, limit policy tightened) or that
/// cannot be queued is dropped with a warning — it stays journaled and
/// will be retried on the next restart.
fn recover_jobs(shared: &Arc<Shared>, pending: &[Json]) {
    for spec in pending {
        let (key, cfg) = match parse_job_spec(shared, spec) {
            Ok(v) => v,
            Err((kind, message)) => {
                eprintln!("warning: dropping unrecoverable journaled job ({kind}: {message})");
                continue;
            }
        };
        let digest = key.digest();
        if shared.cache.lookup(&key).is_some() {
            // The previous process finished the work but died before the
            // `done` line landed; the cache is the source of truth.
            shared.journal.record_done(&digest);
            continue;
        }
        let job = Arc::new(Job {
            key,
            digest: digest.clone(),
            cfg,
            subs: Mutex::new(Vec::new()),
            cancel: Arc::new(AtomicBool::new(false)),
            detached: true,
        });
        let mut inflight = shared
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inflight.contains_key(&digest) {
            continue;
        }
        match shared.queue.try_send(job.clone()) {
            Ok(()) => {
                shared.queue_depth.fetch_add(1, Ordering::Relaxed);
                inflight.insert(digest, job);
                shared.recovered.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                eprintln!(
                    "warning: recovery queue full; job {digest} stays journaled \
                     for the next restart"
                );
            }
        }
    }
    let n = shared.recovered.load(Ordering::Relaxed);
    if n > 0 {
        eprintln!("recovered {n} interrupted job(s) from the journal");
    }
}

/// The drain monitor: once draining starts, wait for the queue and
/// inflight map to empty, then flip the real shutdown flag.
fn drain_monitor(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        let idle = shared.queue_depth.load(Ordering::Relaxed) == 0
            && shared
                .inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .is_empty();
        if idle {
            shared.shutdown.store(true, Ordering::Relaxed);
            return;
        }
        std::thread::sleep(POLL);
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                std::thread::spawn(move || handle_conn(&shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

// ---- per-connection request handling ---------------------------------------

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    // Short read timeouts let the thread notice server shutdown while
    // idle; a timed-out `read_line` keeps its partial bytes in `line`,
    // so slow writers still get whole lines handled.
    let _ = stream.set_read_timeout(Some(POLL));
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(Conn {
        writer: Mutex::new(writer),
        alive: AtomicBool::new(true),
    });
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while conn.alive() && !shared.shutdown.load(Ordering::Relaxed) {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !line.trim().is_empty() {
                    handle_line(shared, &conn, line.trim());
                }
                line.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
    conn.alive.store(false, Ordering::Relaxed);
}

fn set_tag(j: &mut Json, tag: &Option<String>) {
    if let Some(t) = tag {
        j.set("tag", t.as_str().into());
    }
}

fn send_error(conn: &Conn, tag: &Option<String>, kind: &str, message: &str) {
    let mut j = Json::object();
    j.set("type", "error".into());
    set_tag(j.set("kind", kind.into()), tag);
    j.set("message", message.into());
    conn.send(&j);
}

fn handle_line(shared: &Arc<Shared>, conn: &Arc<Conn>, line: &str) {
    let req = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            send_error(
                conn,
                &None,
                "bad_request",
                &format!("unparseable request: {e}"),
            );
            return;
        }
    };
    let tag = req.get("tag").and_then(Json::as_str).map(str::to_string);
    match req.get("op").and_then(Json::as_str) {
        Some("ping") => {
            let mut j = Json::object();
            j.set("type", "pong".into());
            j.set("protocol", Json::from(PROTOCOL_VERSION));
            set_tag(&mut j, &tag);
            conn.send(&j);
        }
        Some("submit") => handle_submit(shared, conn, &req, tag),
        Some("compare") => handle_compare(shared, conn, &req, tag),
        Some("stats") => conn.send(&stats_json(shared, &tag)),
        Some("shutdown") => {
            let drain = req.get("drain").and_then(Json::as_bool).unwrap_or(false);
            let mut j = Json::object();
            j.set("type", "shutdown".into());
            set_tag(&mut j, &tag);
            j.set("draining", Json::from(drain));
            conn.send(&j);
            if drain {
                // Graceful: stop accepting work, let queued jobs finish,
                // then stop. Idempotent — only the first drain request
                // spawns the monitor.
                if !shared.draining.swap(true, Ordering::Relaxed) {
                    let shared = shared.clone();
                    std::thread::spawn(move || drain_monitor(&shared));
                }
            } else {
                shared.shutdown.store(true, Ordering::Relaxed);
            }
        }
        Some(other) => send_error(conn, &tag, "bad_request", &format!("unknown op `{other}`")),
        None => send_error(conn, &tag, "bad_request", "missing `op`"),
    }
}

/// Decode a job spec — `workload`, optional `config` (a `parse_config`
/// name), optional `overrides`, `limit`, `seed` — into a [`JobKey`] and
/// the fully-resolved configuration. `Err` is (error kind, message).
fn parse_job_spec(
    shared: &Shared,
    spec: &Json,
) -> Result<(JobKey, MachineConfig), (String, String)> {
    let bad = |m: &str| Err(("bad_request".to_string(), m.to_string()));
    let Some(workload) = spec.get("workload").and_then(Json::as_str) else {
        return bad("missing `workload`");
    };
    if by_name(workload).is_none() {
        return Err((
            "unknown_workload".to_string(),
            format!("unknown workload `{workload}`"),
        ));
    }
    let config_name = spec
        .get("config")
        .and_then(Json::as_str)
        .unwrap_or("slice2");
    let Some(mut cfg) = runners::parse_config(config_name) else {
        return Err((
            "unknown_config".to_string(),
            format!("unknown config `{config_name}` (try: ideal simple2 slice2 slice2-3 ext2 …)"),
        ));
    };
    if let Some(ov) = spec.get("overrides") {
        if let Err(m) = apply_overrides(&mut cfg, ov) {
            return bad(&m);
        }
    }
    let limit = spec
        .get("limit")
        .and_then(Json::as_u64)
        .unwrap_or(runners::DEFAULT_LIMIT);
    if limit == 0 || limit > shared.max_limit {
        return bad(&format!(
            "`limit` must be in 1..={} (got {limit})",
            shared.max_limit
        ));
    }
    let seed = spec.get("seed").and_then(Json::as_u64).unwrap_or(0);
    Ok((JobKey::new(workload, config_name, &cfg, seed, limit), cfg))
}

/// Apply the whitelisted machine-config overrides of a job spec. The
/// resulting config participates in the fingerprint, so overridden jobs
/// cache under their own keys.
fn apply_overrides(cfg: &mut MachineConfig, ov: &Json) -> Result<(), String> {
    let Json::Object(pairs) = ov else {
        return Err("`overrides` must be an object".to_string());
    };
    for (k, v) in pairs {
        let num = || {
            v.as_u64()
                .ok_or_else(|| format!("override `{k}` must be a non-negative integer"))
        };
        match k.as_str() {
            "width" => cfg.width = num()? as u32,
            "ruu_size" => cfg.ruu_size = num()? as usize,
            "lsq_size" => cfg.lsq_size = num()? as usize,
            "mem_ports" => cfg.mem_ports = num()? as u32,
            "int_alus" => cfg.int_alus = num()? as u32,
            "watchdog" => cfg.watchdog = num()?,
            "oracle" => {
                cfg.oracle = v
                    .as_bool()
                    .ok_or_else(|| "override `oracle` must be a boolean".to_string())?;
            }
            other => return Err(format!("unknown override `{other}`")),
        }
    }
    Ok(())
}

fn key_json(key: &JobKey) -> Json {
    let mut j = Json::object();
    j.set("workload", key.workload.as_str().into());
    j.set("config", key.config_name.as_str().into());
    j.set("config_hash", format!("{:016x}", key.config_hash).into());
    j.set("seed", Json::from(key.seed));
    j.set("limit", Json::from(key.limit));
    j
}

fn send_accepted(conn: &Conn, tag: &Option<String>, key: &JobKey, digest: &str) {
    let mut j = Json::object();
    j.set("type", "accepted".into());
    set_tag(&mut j, tag);
    j.set("digest", digest.into());
    j.set("key", key_json(key));
    conn.send(&j);
}

fn send_result(conn: &Conn, tag: &Option<String>, cached: bool, digest: &str, body: &str) {
    let Ok(artifact) = Json::parse(body) else {
        // Unreachable for bodies we just built or verified; fail loud
        // rather than serve garbage if it ever regresses.
        send_error(conn, tag, "internal", "artifact body failed to parse");
        return;
    };
    let mut j = Json::object();
    j.set("type", "result".into());
    set_tag(&mut j, tag);
    j.set("cached", Json::from(cached));
    j.set("digest", digest.into());
    j.set("artifact", artifact);
    conn.send(&j);
}

fn handle_submit(shared: &Arc<Shared>, conn: &Arc<Conn>, req: &Json, tag: Option<String>) {
    if shared.draining.load(Ordering::Relaxed) {
        send_error(
            conn,
            &tag,
            "shutdown",
            "server is draining; not accepting work",
        );
        return;
    }
    let (key, cfg) = match parse_job_spec(shared, req) {
        Ok(v) => v,
        Err((kind, message)) => {
            send_error(conn, &tag, &kind, &message);
            return;
        }
    };
    let events = req.get("events").and_then(Json::as_bool).unwrap_or(false);
    let digest = key.digest();
    shared.submitted.fetch_add(1, Ordering::Relaxed);
    let sub = Subscriber {
        conn: conn.clone(),
        tag: tag.clone(),
        events,
    };

    // The attach / cache-read / enqueue decision happens entirely under
    // the inflight lock (see the invariant on [`Shared::inflight`]), so
    // two submitters of one key can never both start a simulation, and
    // a key absent from the map is guaranteed complete on disk.
    let mut inflight = shared
        .inflight
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(job) = inflight.get(&digest) {
        job.subs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(sub);
        shared.attached.fetch_add(1, Ordering::Relaxed);
        send_accepted(conn, &tag, &key, &digest);
        return;
    }
    if let Some(body) = shared.cache.lookup(&key) {
        drop(inflight);
        shared.cache_hits.fetch_add(1, Ordering::Relaxed);
        send_accepted(conn, &tag, &key, &digest);
        send_result(conn, &tag, true, &digest, &body);
        return;
    }
    let job = Arc::new(Job {
        key: key.clone(),
        digest: digest.clone(),
        cfg,
        subs: Mutex::new(vec![sub]),
        cancel: Arc::new(AtomicBool::new(false)),
        detached: false,
    });
    match shared.queue.try_send(job.clone()) {
        Ok(()) => {
            // Journal before the job becomes runnable: if the process
            // dies mid-simulation, restart recovery re-enqueues it.
            shared.journal.record_job(&digest, &journal_spec(req));
            shared.queue_depth.fetch_add(1, Ordering::Relaxed);
            inflight.insert(digest.clone(), job);
            // Send `accepted` before releasing the lock: a worker
            // cannot deliver this job's result until it can remove the
            // digest from the map, so responses stay ordered.
            send_accepted(conn, &tag, &key, &digest);
        }
        Err(TrySendError::Full(_)) => {
            drop(inflight);
            send_error(
                conn,
                &tag,
                "backpressure",
                &format!(
                    "job queue is full ({} pending); retry later",
                    shared.queue_capacity
                ),
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            drop(inflight);
            send_error(conn, &tag, "shutdown", "server is shutting down");
        }
    }
}

fn handle_compare(shared: &Arc<Shared>, conn: &Arc<Conn>, req: &Json, tag: Option<String>) {
    let mut sides = Vec::new();
    for side in ["a", "b"] {
        let Some(spec) = req.get(side) else {
            send_error(conn, &tag, "bad_request", &format!("missing side `{side}`"));
            return;
        };
        let key = match parse_job_spec(shared, spec) {
            Ok((key, _)) => key,
            Err((kind, message)) => {
                send_error(conn, &tag, &kind, &format!("side `{side}`: {message}"));
                return;
            }
        };
        let Some(body) = shared.cache.lookup(&key) else {
            send_error(
                conn,
                &tag,
                "not_cached",
                &format!(
                    "side `{side}` ({}) is not cached; submit it first",
                    key.digest()
                ),
            );
            return;
        };
        let Ok(parsed) = Json::parse(&body) else {
            send_error(conn, &tag, "internal", "cached body failed to parse");
            return;
        };
        sides.push((key, parsed));
    }
    let (key_b, body_b) = sides.pop().expect("two sides pushed");
    let (key_a, body_a) = sides.pop().expect("two sides pushed");
    let ipc = |b: &Json| b.get("ipc").and_then(Json::as_f64).unwrap_or(0.0);
    let (ipc_a, ipc_b) = (ipc(&body_a), ipc(&body_b));

    // Counter-by-counter diff of the stats blocks.
    let mut differing = Vec::new();
    if let (Some(Json::Object(sa)), Some(Json::Object(sb))) =
        (body_a.get("stats"), body_b.get("stats"))
    {
        for (name, va) in sa {
            let vb = sb.iter().find(|(n, _)| n == name).map(|(_, v)| v);
            if vb != Some(va) {
                let mut d = Json::object();
                d.set("counter", name.as_str().into());
                d.set("a", va.clone());
                d.set("b", vb.cloned().unwrap_or(Json::Null));
                differing.push(d);
            }
        }
    }

    let mut j = Json::object();
    j.set("type", "compare".into());
    set_tag(&mut j, &tag);
    j.set("a", key_json(&key_a));
    j.set("b", key_json(&key_b));
    j.set("ipc_a", Json::from(ipc_a));
    j.set("ipc_b", Json::from(ipc_b));
    j.set(
        "ipc_ratio",
        Json::from(if ipc_b > 0.0 { ipc_a / ipc_b } else { 0.0 }),
    );
    j.set("differing_counters", Json::Array(differing));
    conn.send(&j);
}

fn stats_json(shared: &Shared, tag: &Option<String>) -> Json {
    let (meter_jobs, meter_instructions) = runners::meter_snapshot();
    let mut j = Json::object();
    j.set("type", "stats".into());
    set_tag(&mut j, tag);
    j.set("protocol", Json::from(PROTOCOL_VERSION));
    j.set(
        "submitted",
        Json::from(shared.submitted.load(Ordering::Relaxed)),
    );
    j.set(
        "cache_hits",
        Json::from(shared.cache_hits.load(Ordering::Relaxed)),
    );
    j.set(
        "attached",
        Json::from(shared.attached.load(Ordering::Relaxed)),
    );
    j.set(
        "simulations",
        Json::from(shared.simulations.load(Ordering::Relaxed)),
    );
    j.set(
        "job_errors",
        Json::from(shared.job_errors.load(Ordering::Relaxed)),
    );
    j.set(
        "queue_depth",
        Json::from(shared.queue_depth.load(Ordering::Relaxed)),
    );
    j.set(
        "recovered",
        Json::from(shared.recovered.load(Ordering::Relaxed)),
    );
    j.set(
        "draining",
        Json::from(shared.draining.load(Ordering::Relaxed)),
    );
    j.set("cache_degraded", Json::from(shared.cache_degraded));
    j.set("meter_jobs", Json::from(meter_jobs));
    j.set("meter_instructions", Json::from(meter_instructions));
    j
}

// ---- workers ---------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Arc<Job>>>>) {
    loop {
        let msg = {
            let rx = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv_timeout(Duration::from_millis(100))
        };
        match msg {
            Ok(job) => {
                shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                run_job(shared, &job);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Execute one job end to end: simulate (panic-isolated), persist the
/// artifact, retire the inflight entry, and answer every subscriber.
fn run_job(shared: &Shared, job: &Job) {
    if job.detached {
        // A recovered job answers nobody; if the cache already has the
        // result (stored between the journal's `job` line and the
        // crash), completing it is a single `done` line.
        if shared.cache.lookup(&job.key).is_some() {
            shared.journal.record_done(&job.digest);
            shared
                .inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&job.digest);
            return;
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| simulate_job(shared, job)));
    let result: Result<String, Json> = match outcome {
        Ok(Ok(stats)) => {
            let body = ArtifactCache::job_body(&job.key, &stats);
            // A failed store (disk full, unwritable root) is not fatal:
            // the fresh body is still served, the key just misses next
            // time and re-simulates.
            let _ = shared.cache.store(&job.key, &body);
            shared.simulations.fetch_add(1, Ordering::Relaxed);
            runners::meter_record(stats.committed);
            Ok(body)
        }
        Ok(Err(e)) => {
            shared.job_errors.fetch_add(1, Ordering::Relaxed);
            Err(e.to_wire_json())
        }
        Err(payload) => {
            shared.job_errors.fetch_add(1, Ordering::Relaxed);
            let mut j = Json::object();
            j.set("kind", "panic".into());
            j.set(
                "message",
                format!("job panicked: {}", pool::panic_message(payload.as_ref())).into(),
            );
            Err(j)
        }
    };
    // Every outcome — result, typed error, panic — retires the job: the
    // journal's `done` line keeps recovery from rerunning a job that
    // already answered its submitters (a deterministic failure would
    // just fail again on every restart).
    shared.journal.record_done(&job.digest);
    // Cache write (above) strictly precedes inflight removal, upholding
    // the lookup invariant; removal strictly precedes responses, so a
    // client that sees a result can immediately cache-hit or compare.
    shared
        .inflight
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .remove(&job.digest);
    let subs: Vec<Subscriber> = std::mem::take(
        &mut *job
            .subs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    for sub in subs {
        match &result {
            Ok(body) => send_result(&sub.conn, &sub.tag, false, &job.digest, body),
            Err(e) => {
                let mut j = e.clone();
                j.set("type", "error".into());
                set_tag(&mut j, &sub.tag);
                j.set("digest", job.digest.as_str().into());
                sub.conn.send(&j);
            }
        }
    }
}

/// The simulation itself, on the worker thread: always under a
/// [`ProgressSink`] (whether or not anyone subscribed to events), so a
/// job's timing behaviour — and therefore its artifact — is independent
/// of who is watching.
fn simulate_job(shared: &Shared, job: &Job) -> Result<SimStats, SimError> {
    runners::poison_check(&job.key.workload);
    job.cfg.validate()?;
    let w = by_name(&job.key.workload).expect("workload validated at submit");
    let program = w.program();
    let mut sim = Simulator::with_sink(
        &job.cfg,
        ProgressSink {
            job,
            interval: shared.progress_interval,
            committed: 0,
            next_report: shared.progress_interval,
        },
    );
    sim.set_cancel(job.cancel.clone());
    sim.try_run(&program, job.key.limit)
}

// ---- client ----------------------------------------------------------------

/// Client-side retry parameters: capped exponential backoff with
/// deterministic jitter, applied to transient failures only — refused
/// connections and `backpressure` rejections. Protocol errors
/// (`bad_request`, `unknown_workload`, …) are never retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try plus retries); at least 1.
    pub attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Ceiling on any single backoff, in milliseconds.
    pub cap_ms: u64,
    /// Jitter seed: backoffs are deterministic per (seed, attempt), so
    /// tests and reproductions see identical schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// 5 attempts, 50 ms base, 2 s cap.
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base_ms: 50,
            cap_ms: 2_000,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): `base · 2^(retry-1)`
    /// capped at `cap_ms`, plus up to 50% deterministic jitter (a SplitMix64
    /// step of `seed ^ retry`), still capped.
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << retry.saturating_sub(1).min(32))
            .min(self.cap_ms);
        let mut z = (self.seed ^ u64::from(retry)).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jitter = if exp == 0 { 0 } else { z % (exp / 2 + 1) };
        exp.saturating_add(jitter).min(self.cap_ms)
    }
}

/// A client operation that could not complete.
#[derive(Debug)]
pub enum ClientError {
    /// A non-retriable transport failure.
    Io(io::Error),
    /// The retry budget ran out on a transient condition; `last` is the
    /// final connect error or `backpressure` message seen.
    GaveUp {
        /// Attempts made before giving up.
        attempts: u32,
        /// Human-readable description of the last failure.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "{e}"),
            ClientError::GaveUp { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A minimal line-JSON client for the serve protocol, used by the
/// `serve client` subcommand and the e2e tests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connect with retries: a refused/unreachable connect backs off per
    /// `policy` and tries again, for daemons still binding (or restarting
    /// after a crash). Gives up with [`ClientError::GaveUp`].
    pub fn connect_retry(addr: &str, policy: &RetryPolicy) -> Result<Client, ClientError> {
        let attempts = policy.attempts.max(1);
        let mut last = String::new();
        for attempt in 1..=attempts {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = e.to_string(),
            }
            if attempt < attempts {
                std::thread::sleep(Duration::from_millis(policy.backoff_ms(attempt)));
            }
        }
        Err(ClientError::GaveUp { attempts, last })
    }

    /// Submit with retries: send `req` and consume the stream to the
    /// final line; a `backpressure` rejection backs off per `policy` and
    /// resubmits. Every other response — results *and* non-transient
    /// protocol errors — returns as-is with the lines seen before it.
    /// Gives up with [`ClientError::GaveUp`] when the queue never drains.
    pub fn submit_retry(
        &mut self,
        req: &Json,
        policy: &RetryPolicy,
    ) -> Result<(Json, Vec<Json>), ClientError> {
        let attempts = policy.attempts.max(1);
        let mut last = String::new();
        for attempt in 1..=attempts {
            self.send(req)?;
            let (done, seen) = self.recv_until(&["result"])?;
            let transient = done.get("type").and_then(Json::as_str) == Some("error")
                && done.get("kind").and_then(Json::as_str) == Some("backpressure");
            if !transient {
                return Ok((done, seen));
            }
            last = done
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("backpressure")
                .to_string();
            if attempt < attempts {
                std::thread::sleep(Duration::from_millis(policy.backoff_ms(attempt)));
            }
        }
        Err(ClientError::GaveUp { attempts, last })
    }

    /// Send one request line.
    pub fn send(&mut self, req: &Json) -> io::Result<()> {
        let mut line = req.to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    /// Read the next response line (blocks; `UnexpectedEof` when the
    /// server closes the connection).
    pub fn recv(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Send `req` and read one response.
    pub fn request(&mut self, req: &Json) -> io::Result<Json> {
        self.send(req)?;
        self.recv()
    }

    /// Read responses until one of `types` (or `error`) arrives,
    /// returning it plus every line seen before it — the pattern for
    /// consuming a `submit`'s `accepted`/`progress` stream.
    pub fn recv_until(&mut self, types: &[&str]) -> io::Result<(Json, Vec<Json>)> {
        let mut seen = Vec::new();
        loop {
            let j = self.recv()?;
            let t = j.get("type").and_then(Json::as_str).unwrap_or("");
            if types.contains(&t) || t == "error" {
                return Ok((j, seen));
            }
            seen.push(j);
        }
    }
}
