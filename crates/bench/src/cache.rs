//! Content-addressed on-disk artifact cache for the serve daemon.
//!
//! The simulator is a pure function of (program, config, budget) — the
//! determinism suite pins this — so a finished job's artifact can be
//! served from disk to any later request with the same key. A cache
//! entry is one pretty-printed JSON body addressed by the 128-bit
//! digest of its [`JobKey`]; the body embeds the full key material plus
//! an FNV integrity checksum, and [`ArtifactCache::lookup`] re-verifies
//! both before serving a byte, so truncated, corrupted, or
//! stale-schema entries read as misses (and are re-simulated), never as
//! bad data. Writes go through a temp file + atomic rename, so a
//! concurrent reader sees either the old entry or the complete new one.

use crate::artifact::counters_json;
use popk_core::hash::{digest128_hex, fnv1a_64};
use popk_core::{Json, MachineConfig, SimStats};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version stamp of the cached-entry body shape. Bump on any
/// incompatible change: the digest material includes it, so old entries
/// simply become unreachable (and unreadable ones are re-simulated).
pub const CACHE_SCHEMA_VERSION: u64 = 1;

/// The identity of one simulation job, as cached and compared: which
/// workload, under which machine configuration, for how many
/// instructions. This is the *single* derivation of config identity in
/// the bench layer — the cache, the `compare` runner dedup, and the
/// compare reports all go through [`MachineConfig::fingerprint`] via
/// this type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobKey {
    /// Workload name (as in the workload registry).
    pub workload: String,
    /// Human-readable configuration label (`parse_config` name); carried
    /// for display, not identity — `config_hash` is the identity.
    pub config_name: String,
    /// [`MachineConfig::fingerprint`] of the full configuration.
    pub config_hash: u64,
    /// Seed namespace. Today's workloads are deterministic kernels with
    /// no seed input, so distinct seeds simply address distinct cache
    /// entries; the field reserves the keyspace for future seeded modes.
    pub seed: u64,
    /// Dynamic-instruction budget.
    pub limit: u64,
}

impl JobKey {
    /// Build the key for running `workload` under `cfg` for `limit`
    /// instructions.
    pub fn new(
        workload: &str,
        config_name: &str,
        cfg: &MachineConfig,
        seed: u64,
        limit: u64,
    ) -> JobKey {
        JobKey {
            workload: workload.to_string(),
            config_name: config_name.to_string(),
            config_hash: cfg.fingerprint(),
            seed,
            limit,
        }
    }

    /// The canonical byte string the content address is derived from.
    /// `config_name` is deliberately absent: two labels for the same
    /// configuration must share an entry.
    fn material(&self) -> String {
        format!(
            "{}\n{:016x}\n{}\n{}\nv{}",
            self.workload, self.config_hash, self.seed, self.limit, CACHE_SCHEMA_VERSION
        )
    }

    /// The 128-bit hex content address of this key.
    pub fn digest(&self) -> String {
        digest128_hex(self.material().as_bytes())
    }
}

/// The on-disk cache: `root/<digest[..2]>/<digest>.json`, one complete
/// artifact body per file.
#[derive(Debug)]
pub struct ArtifactCache {
    root: PathBuf,
    /// Distinguishes concurrent writers' temp files within one process
    /// (the pid distinguishes processes).
    counter: AtomicU64,
    /// Size cap in bytes; `None` is unbounded. See
    /// [`ArtifactCache::with_capacity`].
    max_bytes: Option<u64>,
}

impl ArtifactCache {
    /// Open (creating nothing yet) an unbounded cache rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> ArtifactCache {
        ArtifactCache::with_capacity(root, None)
    }

    /// Open a cache with a size cap. After every store that leaves the
    /// cache over `max_bytes`, entries are evicted least-recently-used
    /// first (by file mtime — [`lookup`](ArtifactCache::lookup) touches
    /// entries it serves) until the total is back under the cap. The
    /// just-stored entry is never evicted, so a cap smaller than one
    /// entry still serves that entry. Undeletable files are skipped:
    /// eviction degrades to best-effort, never to an error.
    pub fn with_capacity(root: impl Into<PathBuf>, max_bytes: Option<u64>) -> ArtifactCache {
        ArtifactCache {
            root: root.into(),
            counter: AtomicU64::new(0),
            max_bytes,
        }
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path a given digest stores at.
    pub fn path_for(&self, digest: &str) -> PathBuf {
        self.root.join(&digest[..2]).join(format!("{digest}.json"))
    }

    /// Fetch the cached body for `key`, verifying integrity and key
    /// identity. Any defect — missing file, unparseable JSON, checksum
    /// mismatch, schema or key-field mismatch (including a digest
    /// collision) — is a miss, never an error: the caller re-simulates
    /// and overwrites.
    pub fn lookup(&self, key: &JobKey) -> Option<String> {
        let path = self.path_for(&key.digest());
        let body = std::fs::read_to_string(&path).ok()?;
        let parsed = verify_body(&body)?;
        let field_u64 = |k: &str| parsed.get(k).and_then(Json::as_u64);
        let matches = parsed.get("schema_version").and_then(Json::as_u64)
            == Some(CACHE_SCHEMA_VERSION)
            && parsed.get("workload").and_then(Json::as_str) == Some(key.workload.as_str())
            && parsed.get("config_hash").and_then(Json::as_str)
                == Some(format!("{:016x}", key.config_hash).as_str())
            && field_u64("seed") == Some(key.seed)
            && field_u64("instruction_limit") == Some(key.limit);
        if matches && self.max_bytes.is_some() {
            touch(&path);
        }
        matches.then_some(body)
    }

    /// Store `body` as the entry for `key`: write-to-temp then atomic
    /// rename, so concurrent readers of the same digest never observe a
    /// partial file. Last writer wins — bodies for one key are
    /// byte-identical by determinism, so the race is benign.
    pub fn store(&self, key: &JobKey, body: &str) -> std::io::Result<PathBuf> {
        let path = self.path_for(&key.digest());
        let dir = path.parent().expect("digest path has a parent");
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".tmp.{}.{}",
            std::process::id(),
            self.counter.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, &path)?;
        if let Some(cap) = self.max_bytes {
            self.evict_to_cap(cap, &path);
        }
        Ok(path)
    }

    /// Walk every cached entry (the two-level digest layout), oldest
    /// mtime first, and delete until total size fits `cap`. `keep` (the
    /// entry just stored) is exempt; files that refuse deletion are
    /// skipped and simply stop counting toward frees.
    fn evict_to_cap(&self, cap: u64, keep: &Path) {
        let mut entries: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        let Ok(shards) = std::fs::read_dir(&self.root) else {
            return;
        };
        for shard in shards.flatten() {
            if !shard.file_type().is_ok_and(|t| t.is_dir()) {
                continue;
            }
            let Ok(files) = std::fs::read_dir(shard.path()) else {
                continue;
            };
            for f in files.flatten() {
                let path = f.path();
                if path.extension().and_then(|e| e.to_str()) != Some("json") {
                    continue;
                }
                let Ok(meta) = f.metadata() else { continue };
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                entries.push((path, meta.len(), mtime));
            }
        }
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if total <= cap {
            return;
        }
        entries.sort_by_key(|&(_, _, mtime)| mtime);
        for (path, len, _) in entries {
            if total <= cap {
                break;
            }
            if path == keep {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
            }
        }
    }

    /// Build the canonical artifact body for a completed job: the full
    /// key material, IPC, every stats counter, and the integrity
    /// checksum, pretty-printed with a trailing newline (matching the
    /// committed `BENCH_*.json` style).
    pub fn job_body(key: &JobKey, stats: &SimStats) -> String {
        let mut j = Json::object();
        j.set("schema_version", Json::from(CACHE_SCHEMA_VERSION));
        j.set("kind", "job".into());
        j.set("workload", key.workload.as_str().into());
        j.set("config", key.config_name.as_str().into());
        j.set("config_hash", format!("{:016x}", key.config_hash).into());
        j.set("seed", Json::from(key.seed));
        j.set("instruction_limit", Json::from(key.limit));
        j.set("ipc", Json::from(stats.ipc()));
        j.set("stats", counters_json(stats));
        seal_body(j)
    }
}

/// Best-effort LRU recency bump for a capped cache: set the entry's
/// mtime to now on a hit. Failures are ignored — a read-only cache
/// still serves, its recency just stops updating.
fn touch(path: &Path) {
    if let Ok(f) = std::fs::File::options().append(true).open(path) {
        let _ = f.set_modified(std::time::SystemTime::now());
    }
}

/// Serialize `j` with its integrity checksum appended: the checksum is
/// the FNV-1a hash of the pretty body *without* the `integrity` field,
/// so verification removes the field and re-hashes.
pub fn seal_body(mut j: Json) -> String {
    j.remove("integrity");
    let unsealed = j.to_pretty(2);
    j.set(
        "integrity",
        format!("{:016x}", fnv1a_64(unsealed.as_bytes())).into(),
    );
    let mut body = j.to_pretty(2);
    body.push('\n');
    body
}

/// Parse `body` and check its integrity seal, returning the parsed
/// value (with the `integrity` field removed) if sound.
pub fn verify_body(body: &str) -> Option<Json> {
    let mut parsed = Json::parse(body).ok()?;
    let stated = parsed.remove("integrity")?.as_str()?.to_string();
    let actual = format!("{:016x}", fnv1a_64(parsed.to_pretty(2).as_bytes()));
    (stated == actual).then_some(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir =
            std::env::temp_dir().join(format!("popk-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::new(dir)
    }

    fn sample_key() -> JobKey {
        JobKey::new("gzip", "slice2", &MachineConfig::slice2_full(), 0, 20_000)
    }

    fn sample_body(key: &JobKey) -> String {
        let stats = SimStats {
            committed: 20_000,
            cycles: 10_000,
            ..Default::default()
        };
        ArtifactCache::job_body(key, &stats)
    }

    #[test]
    fn digest_is_stable_and_ignores_label() {
        let key = sample_key();
        assert_eq!(key.digest(), key.digest());
        assert_eq!(key.digest().len(), 32);
        // Same config under a different display label → same entry.
        let relabeled = JobKey::new(
            "gzip",
            "other-name",
            &MachineConfig::slice2_full(),
            0,
            20_000,
        );
        assert_eq!(relabeled.digest(), key.digest());
        // Every identity field perturbs the digest.
        for other in [
            JobKey::new("gcc", "slice2", &MachineConfig::slice2_full(), 0, 20_000),
            JobKey::new("gzip", "slice2", &MachineConfig::ideal(), 0, 20_000),
            JobKey::new("gzip", "slice2", &MachineConfig::slice2_full(), 1, 20_000),
            JobKey::new("gzip", "slice2", &MachineConfig::slice2_full(), 0, 20_001),
        ] {
            assert_ne!(other.digest(), key.digest());
        }
    }

    #[test]
    fn roundtrip_hits() {
        let cache = temp_cache("roundtrip");
        let key = sample_key();
        assert_eq!(cache.lookup(&key), None, "cold cache misses");
        let body = sample_body(&key);
        cache.store(&key, &body).expect("store");
        assert_eq!(cache.lookup(&key).as_deref(), Some(body.as_str()));
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn truncated_and_corrupted_entries_miss() {
        let cache = temp_cache("corrupt");
        let key = sample_key();
        let body = sample_body(&key);
        let path = cache.store(&key, &body).expect("store");

        // Truncation: invalid JSON → miss.
        std::fs::write(&path, &body[..body.len() / 2]).unwrap();
        assert_eq!(cache.lookup(&key), None);

        // Bit-rot that stays valid JSON: checksum mismatch → miss.
        let flipped = body.replacen("\"ipc\": 2", "\"ipc\": 3", 1);
        assert_ne!(flipped, body, "corruption actually changed the body");
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(cache.lookup(&key), None);

        // Reseal a tampered body: checksum passes but the key fields
        // disagree with the request → still a miss.
        let mut tampered = verify_body(&body).unwrap();
        tampered.set("workload", "gcc".into());
        std::fs::write(&path, seal_body(tampered)).unwrap();
        assert_eq!(cache.lookup(&key), None);

        // A fresh store repairs the entry.
        cache.store(&key, &body).expect("re-store");
        assert_eq!(cache.lookup(&key).as_deref(), Some(body.as_str()));
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn stale_schema_entries_miss() {
        let cache = temp_cache("schema");
        let key = sample_key();
        let mut old = verify_body(&sample_body(&key)).unwrap();
        old.set("schema_version", Json::from(CACHE_SCHEMA_VERSION + 1));
        // A well-formed, checksummed body from a future/past schema.
        let path = cache.path_for(&key.digest());
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, seal_body(old)).unwrap();
        assert_eq!(cache.lookup(&key), None);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn capped_cache_evicts_least_recently_used_first() {
        let dir = std::env::temp_dir().join(format!("popk-cache-test-{}-lru", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let keys: Vec<JobKey> = (0..3)
            .map(|seed| {
                JobKey::new(
                    "gzip",
                    "slice2",
                    &MachineConfig::slice2_full(),
                    seed,
                    20_000,
                )
            })
            .collect();
        let bodies: Vec<String> = keys.iter().map(sample_body).collect();
        let entry_len = bodies[0].len() as u64;
        // Room for two entries, not three.
        let cache = ArtifactCache::with_capacity(&dir, Some(entry_len * 2 + entry_len / 2));

        cache.store(&keys[0], &bodies[0]).expect("store 0");
        cache.store(&keys[1], &bodies[1]).expect("store 1");
        assert!(cache.lookup(&keys[0]).is_some());
        assert!(cache.lookup(&keys[1]).is_some());

        // Age entry 0, refresh entry 1 via a hit, then overflow: the
        // stale entry 0 must be the one evicted.
        let old = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        std::fs::File::options()
            .append(true)
            .open(cache.path_for(&keys[0].digest()))
            .unwrap()
            .set_modified(old)
            .unwrap();
        assert!(cache.lookup(&keys[1]).is_some(), "touches entry 1");
        cache.store(&keys[2], &bodies[2]).expect("store 2");

        assert_eq!(cache.lookup(&keys[0]), None, "LRU entry evicted");
        assert!(cache.lookup(&keys[1]).is_some(), "recent entry kept");
        assert!(cache.lookup(&keys[2]).is_some(), "just-stored entry kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cap_smaller_than_one_entry_keeps_the_newest() {
        let dir = std::env::temp_dir().join(format!("popk-cache-test-{}-tiny", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::with_capacity(&dir, Some(1));
        let a = JobKey::new("gzip", "slice2", &MachineConfig::slice2_full(), 0, 20_000);
        let b = JobKey::new("gzip", "slice2", &MachineConfig::slice2_full(), 1, 20_000);
        cache.store(&a, &sample_body(&a)).expect("store a");
        cache.store(&b, &sample_body(&b)).expect("store b");
        assert_eq!(cache.lookup(&a), None, "older entry evicted");
        assert!(
            cache.lookup(&b).is_some(),
            "the just-stored entry survives even an undersized cap"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncapped_cache_never_evicts() {
        let cache = temp_cache("uncapped");
        let keys: Vec<JobKey> = (0..4)
            .map(|seed| {
                JobKey::new(
                    "gzip",
                    "slice2",
                    &MachineConfig::slice2_full(),
                    seed,
                    20_000,
                )
            })
            .collect();
        for k in &keys {
            cache.store(k, &sample_body(k)).expect("store");
        }
        for k in &keys {
            assert!(cache.lookup(k).is_some());
        }
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn seal_verify_roundtrip() {
        let mut j = Json::object();
        j.set("a", Json::from(1u64));
        let sealed = seal_body(j.clone());
        let back = verify_body(&sealed).expect("verifies");
        assert_eq!(back, j);
        // Re-sealing an already-sealed value is idempotent.
        let mut with_seal = Json::parse(&sealed).unwrap();
        assert!(with_seal.get("integrity").is_some());
        assert_eq!(seal_body(with_seal.clone()), sealed);
        with_seal.set("a", Json::from(2u64));
        assert_eq!(
            verify_body(&with_seal.to_string()),
            None,
            "stale seal fails"
        );
    }
}
