//! Reproduce **Figure 12**: speedup of bit-slice pipelining over simple
//! pipelining, broken down by technique (cumulative contributions), for
//! slice-by-2 and slice-by-4.
//!
//! Usage: `cargo run --release -p popk-bench --bin fig12
//! [instr_budget] [--json] [--threads N] [--resume]`
//!
//! The sweep is journaled under `.popk/`: with `--resume` a run killed
//! mid-sweep replays its completed rows from the journal and restarts
//! the interrupted row from its last checkpoint. Fig. 12 shares Fig. 11's
//! simulation grid but journals under its own name, so the two sweeps
//! never clobber each other's recovery state.

use popk_bench::{fig12_report_journaled, Cli, HostMeter, SweepJournal};
use std::path::Path;

fn main() {
    let cli = Cli::parse();
    let journal = SweepJournal::open(Path::new(".popk"), "fig12", cli.limit, "", cli.resume);
    let meter = HostMeter::start(cli.threads);
    let mut rep = fig12_report_journaled(cli.limit, cli.threads, Some(&journal));
    print!("{}", rep.text);
    println!("{}", meter.summary());
    if cli.json {
        rep.artifact.set("host", meter.host_json());
        rep.artifact.emit();
    }
    if rep.failures > 0 {
        std::process::exit(1);
    }
    journal.finish();
}
