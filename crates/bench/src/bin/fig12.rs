//! Reproduce **Figure 12**: speedup of bit-slice pipelining over simple
//! pipelining, broken down by technique (cumulative contributions), for
//! slice-by-2 and slice-by-4.
//!
//! Usage: `cargo run --release -p popk-bench --bin fig12
//! [instr_budget] [--json] [--threads N]`

use popk_bench::{fig12_report, Cli, HostMeter};

fn main() {
    let cli = Cli::parse();
    let meter = HostMeter::start(cli.threads);
    let mut rep = fig12_report(cli.limit, cli.threads);
    print!("{}", rep.text);
    println!("{}", meter.summary());
    if cli.json {
        rep.artifact.set("host", meter.host_json());
        rep.artifact.emit();
    }
    if rep.failures > 0 {
        std::process::exit(1);
    }
}
