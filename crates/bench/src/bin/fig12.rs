//! Reproduce **Figure 12**: speedup of bit-slice pipelining over simple
//! pipelining, broken down by technique (cumulative contributions), for
//! slice-by-2 and slice-by-4.
//!
//! Usage: `cargo run --release -p popk-bench --bin fig12 [instr_budget] [--json]`

use popk_bench::fmt::render;
use popk_bench::{fig11, fig12_from, Artifact, Cli};
use popk_core::Json;

const TECHS: [&str; 5] = [
    "partial bypassing",
    "ooo slices",
    "early branch",
    "early l/s disambig",
    "partial tag",
];

fn main() {
    let cli = Cli::parse();
    let limit = cli.limit;
    println!("Figure 12: speedup of bit-slice pipelining over simple pipelining");
    println!("({limit} instructions per run; columns are incremental contributions)\n");

    let data = fig11(limit);
    let mut art = Artifact::new("fig12", limit);
    art.set("techniques", TECHS.iter().copied().collect());
    for by4 in [false, true] {
        let n = if by4 { 4 } else { 2 };
        println!("== {n} slices ==\n");
        let header: Vec<String> = std::iter::once("benchmark".to_string())
            .chain(TECHS.iter().map(|s| s.to_string()))
            .chain(std::iter::once("total".to_string()))
            .collect();
        let rows_data = fig12_from(&data, by4);
        let mut rows = Vec::new();
        let mut jrows = Vec::new();
        let mut new_tech_sum = 0.0;
        for (name, contrib, total) in &rows_data {
            let mut r = vec![name.to_string()];
            r.extend(contrib.iter().map(|c| format!("{:+.1}%", 100.0 * c)));
            r.push(format!("{:+.1}%", 100.0 * total));
            rows.push(r);
            // The paper's "new techniques" are everything past bypassing.
            new_tech_sum += contrib[1..].iter().sum::<f64>();
            let mut o = Json::object();
            o.set("name", (*name).into());
            o.set("contributions", contrib.iter().copied().collect());
            o.set("total_speedup", Json::from(*total));
            jrows.push(o);
        }
        println!("{}", render(&header, &rows));
        let bypass = data.mean_bypass_speedup(by4) - 1.0;
        let total = data.mean_speedup(by4) - 1.0;
        println!(
            "geomean total speedup {:+.1}% (paper: {}); bypassing alone {:+.1}%;\n\
             new techniques add ~{:+.1}% on average (paper: {}).\n",
            100.0 * total,
            if by4 { "+44%" } else { "+16%" },
            100.0 * bypass,
            100.0 * new_tech_sum / rows_data.len() as f64,
            if by4 { "+13%" } else { "+8%" },
        );
        let mut s = Json::object();
        s.set("workloads", Json::Array(jrows));
        s.set("geomean_total_speedup", Json::from(total));
        s.set("geomean_bypass_speedup", Json::from(bypass));
        art.set(if by4 { "slice4" } else { "slice2" }, s);
    }
    if cli.json {
        art.emit();
    }
}
