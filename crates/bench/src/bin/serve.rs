//! The `popk serve` daemon and its scripting client.
//!
//! Daemon:
//! `cargo run --release -p popk-bench --bin serve -- [--addr A] [--workers N]
//! [--queue N] [--cache DIR] [--cache-cap BYTES] [--no-recover]`
//! binds (default `127.0.0.1:4650`), prints `listening on ADDR`, and
//! serves until a client sends `{"op":"shutdown"}`. On startup it
//! replays `serve.journal` under the cache dir and finishes any jobs
//! interrupted by a previous crash (`--no-recover` skips this);
//! `--cache-cap` bounds the artifact cache, evicting LRU entries.
//!
//! Client:
//! `serve client <addr> ping`
//! `serve client <addr> submit <workload> [config] [limit] [--seed S] [--events]`
//! `serve client <addr> compare <workload> <cfgA> <cfgB> [limit]`
//! `serve client <addr> stats`
//! `serve client <addr> shutdown [--drain]`
//!
//! The client retries transient failures (refused connects while the
//! daemon is still binding, `backpressure` rejections from a full
//! queue) with capped exponential backoff before giving up. Every
//! response line is printed as received; the process exits nonzero if
//! any response is an `error`.

use popk_bench::{Client, ClientError, RetryPolicy, ServeConfig, Server};
use popk_core::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = if args.first().map(String::as_str) == Some("client") {
        run_client(&args[1..])
    } else {
        run_daemon(&args)
    };
    std::process::exit(code);
}

fn run_daemon(args: &[String]) -> i32 {
    let mut cfg = ServeConfig::new("127.0.0.1:4650", "popk-serve-cache");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => cfg.workers = value("--workers").parse().unwrap_or(cfg.workers),
            "--queue" => {
                cfg.queue_capacity = value("--queue").parse().unwrap_or(cfg.queue_capacity);
            }
            "--cache" => cfg.cache_dir = value("--cache").into(),
            "--cache-cap" => {
                cfg.cache_max_bytes = value("--cache-cap").replace('_', "").parse().ok();
            }
            "--no-recover" => cfg.recover = false,
            other => {
                eprintln!("unknown argument `{other}`");
                return 2;
            }
        }
    }
    let cache = cfg.cache_dir.display().to_string();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return 1;
        }
    };
    println!("listening on {} (cache: {cache})", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    println!("shut down");
    0
}

fn run_client(args: &[String]) -> i32 {
    let (Some(addr), Some(op)) = (args.first(), args.get(1)) else {
        eprintln!("usage: serve client <addr> ping|submit|compare|stats|shutdown …");
        return 2;
    };
    let retry = RetryPolicy::default();
    let mut client = match Client::connect_retry(addr, &retry) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: connect {addr}: {e}");
            return 1;
        }
    };
    let rest = &args[2..];
    let outcome = match op.as_str() {
        "ping" | "stats" => {
            let mut req = Json::object();
            req.set("op", op.as_str().into());
            one_shot(&mut client, &req)
        }
        "shutdown" => {
            let mut req = Json::object();
            req.set("op", "shutdown".into());
            if rest.iter().any(|a| a == "--drain") {
                req.set("drain", Json::from(true));
            }
            one_shot(&mut client, &req)
        }
        "submit" => client_submit(&mut client, rest, &retry),
        "compare" => client_compare(&mut client, rest),
        other => {
            eprintln!("unknown client op `{other}`");
            return 2;
        }
    };
    match outcome {
        Ok(errored) => i32::from(errored),
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// Send one request, print one response. Returns whether it errored.
fn one_shot(client: &mut Client, req: &Json) -> Result<bool, ClientError> {
    let resp = client.request(req)?;
    println!("{resp}");
    Ok(resp.get("type").and_then(Json::as_str) == Some("error"))
}

fn job_spec(args: &[String]) -> (Json, bool) {
    let mut spec = Json::object();
    let mut events = false;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--events" {
            events = true;
        } else if a == "--seed" {
            if let Some(s) = it.next().and_then(|v| v.parse::<u64>().ok()) {
                spec.set("seed", Json::from(s));
            }
        } else {
            match positional {
                0 => spec.set("workload", a.as_str().into()),
                1 => spec.set("config", a.as_str().into()),
                _ => spec.set(
                    "limit",
                    Json::from(a.replace('_', "").parse::<u64>().unwrap_or(0)),
                ),
            };
            positional += 1;
        }
    }
    (spec, events)
}

fn client_submit(
    client: &mut Client,
    args: &[String],
    retry: &RetryPolicy,
) -> Result<bool, ClientError> {
    let (mut req, events) = job_spec(args);
    req.set("op", "submit".into());
    if events {
        req.set("events", Json::from(true));
    }
    // Stream accepted/progress lines until the terminal response,
    // retrying backpressure rejections with backoff.
    let (last, before) = client.submit_retry(&req, retry)?;
    for line in &before {
        println!("{line}");
    }
    println!("{last}");
    Ok(last.get("type").and_then(Json::as_str) == Some("error"))
}

fn client_compare(client: &mut Client, args: &[String]) -> Result<bool, ClientError> {
    let (Some(workload), Some(cfg_a), Some(cfg_b)) = (args.first(), args.get(1), args.get(2))
    else {
        eprintln!("usage: serve client <addr> compare <workload> <cfgA> <cfgB> [limit]");
        return Ok(true);
    };
    let side = |cfg: &str| {
        let mut s = Json::object();
        s.set("workload", workload.as_str().into());
        s.set("config", cfg.into());
        if let Some(limit) = args
            .get(3)
            .and_then(|v| v.replace('_', "").parse::<u64>().ok())
        {
            s.set("limit", Json::from(limit));
        }
        s
    };
    let mut req = Json::object();
    req.set("op", "compare".into());
    req.set("a", side(cfg_a));
    req.set("b", side(cfg_b));
    one_shot(client, &req)
}
