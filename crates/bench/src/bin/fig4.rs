//! Reproduce **Figure 4**: partial tag matching categories vs. tag bits
//! used — mcf on a 64 KB/64 B cache and twolf on an 8 KB/32 B cache, each
//! at 2/4/8-way associativity.
//!
//! Usage: `cargo run --release -p popk-bench --bin fig4 [instr_budget]`

use popk_bench::fmt::render;
use popk_bench::{arg_limit, fig4};
use popk_characterize::TagCategory;

fn main() {
    let limit = arg_limit();
    println!("Figure 4: partial tag matching ({limit} instructions)\n");
    for (name, big, label) in [
        ("mcf", true, "64KB, 64B lines"),
        ("twolf", false, "8KB, 32B lines"),
    ] {
        for report in fig4(name, big, limit) {
            println!(
                "== {name} — {label}, {}-way ==  ({} accesses, hit rate {:.1}%)\n",
                report.config.ways,
                report.accesses,
                100.0 * report.hits as f64 / report.accesses.max(1) as f64
            );
            let header: Vec<String> = ["addr bit", "tag bits"]
                .iter()
                .map(|s| s.to_string())
                .chain(TagCategory::ALL.iter().map(|c| c.label().to_string()))
                .chain(std::iter::once("spec acc".to_string()))
                .collect();
            let mut rows = Vec::new();
            let full = report.config.tag_bits();
            for t in 1..=full {
                // Print a sparse set of rows like the figure's x-axis.
                if t > 8 && t < full && t % 4 != 0 {
                    continue;
                }
                let pcts = report.percent_with_tag_bits(t);
                let mut r = vec![report.bit_position(t).to_string(), t.to_string()];
                r.extend(pcts.iter().map(|p| format!("{p:.1}%")));
                r.push(format!("{:.1}%", 100.0 * report.speculation_accuracy(t)));
                rows.push(r);
            }
            println!("{}", render(&header, &rows));
        }
    }
    println!(
        "Paper's reading: after 16 address bits both caches still show multiple\n\
         partial matches, but `single entry - miss` is already small, so MRU\n\
         way prediction among the matchers is highly accurate."
    );
}
