//! Reproduce **Figure 2**: early load-store disambiguation categories vs.
//! cumulative address bits compared (from bit 2), 32-entry unified LSQ,
//! for bzip and gcc (pass extra workload names as later CLI args).
//!
//! Usage: `cargo run --release -p popk-bench --bin fig2 [instr_budget] [names…]`

#![allow(clippy::useless_vec)] // row! builds Vec rows; headers reuse it

use popk_bench::fmt::render;
use popk_bench::{arg_limit, fig2};
use popk_characterize::DisambigCategory;

fn main() {
    let limit = arg_limit();
    let extra: Vec<String> = std::env::args().skip(2).collect();
    let names: Vec<&str> = if extra.is_empty() {
        vec!["bzip", "gcc"]
    } else {
        extra.iter().map(|s| s.as_str()).collect()
    };

    println!("Figure 2: early load-store disambiguation ({limit} instructions, 32-entry LSQ)\n");
    for (name, report) in fig2(&names, limit) {
        println!("== {name} ==  ({} loads)\n", report.loads);
        let header: Vec<String> = std::iter::once("bit".to_string())
            .chain(DisambigCategory::ALL.iter().map(|c| c.label().to_string()))
            .collect();
        let mut rows = Vec::new();
        for bit in [2u32, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16, 20, 24, 31] {
            let pcts = report.percent_at_bit(bit);
            let mut r = vec![bit.to_string()];
            r.extend(pcts.iter().map(|p| format!("{p:.1}%")));
            rows.push(r);
        }
        println!("{}", render(&header, &rows));
        println!(
            "loads fully resolved after 9 compared bits (paper: all ruled out or a unique match): {:.1}%\n",
            report.resolved_after_bits(9)
        );
    }
}
