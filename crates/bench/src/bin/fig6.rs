//! Reproduce **Figure 6**: percent of branch mispredictions detectable
//! within k low-order bits of the comparison (cumulative from bit 0),
//! 64K-entry gshare, all benchmarks — plus the §5.3 aggregates (beq/bne
//! share of branches and of mispredictions).
//!
//! Usage: `cargo run --release -p popk-bench --bin fig6 [instr_budget]`

use popk_bench::fmt::render;
use popk_bench::{arg_limit, fig6};

fn main() {
    let limit = arg_limit();
    println!("Figure 6: early branch misprediction detection ({limit} instructions, 64K gshare)\n");
    let reports = fig6(limit);

    let bits = [1u32, 2, 4, 8, 16, 24, 31, 32];
    let header: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(bits.iter().map(|b| format!("≤{b}b")))
        .chain(["acc", "mispr"].iter().map(|s| s.to_string()))
        .collect();
    let mut rows = Vec::new();
    let (mut tot_br, mut tot_eqne, mut tot_mis, mut tot_eqne_mis) = (0u64, 0u64, 0u64, 0u64);
    let mut detect_sum = vec![0.0f64; bits.len()];
    for (name, r) in &reports {
        let mut row = vec![name.to_string()];
        for (i, &b) in bits.iter().enumerate() {
            let v = r.percent_detected_within(b);
            detect_sum[i] += v;
            row.push(format!("{v:.0}%"));
        }
        row.push(format!("{:.1}%", 100.0 * r.accuracy()));
        row.push(r.mispredicts.to_string());
        rows.push(row);
        tot_br += r.branches;
        tot_eqne += r.eq_ne_branches;
        tot_mis += r.mispredicts;
        tot_eqne_mis += r.eq_ne_mispredicts;
    }
    let mut avg = vec!["AVG".to_string()];
    for s in &detect_sum {
        avg.push(format!("{:.0}%", s / reports.len() as f64));
    }
    avg.push(String::new());
    avg.push(String::new());
    rows.push(avg);
    println!("{}", render(&header, &rows));

    println!(
        "beq/bne share of dynamic branches: {:.0}% (paper: 61%)",
        100.0 * tot_eqne as f64 / tot_br.max(1) as f64
    );
    println!(
        "beq/bne share of mispredictions:   {:.0}% (paper: 48%)",
        100.0 * tot_eqne_mis as f64 / tot_mis.max(1) as f64
    );
    println!(
        "avg mispredictions detectable within 8 bits: {:.0}% (paper: ~50%)",
        detect_sum[3] / reports.len() as f64
    );
    println!(
        "avg detectable from bit 0 alone:             {:.0}% (paper: 28%)",
        detect_sum[0] / reports.len() as f64
    );
}
