//! Ablation sweeps beyond the paper's figures, exercising the design
//! choices DESIGN.md calls out:
//!
//! * A: gshare size sweep (how Fig. 6's detection CDF and accuracy move),
//! * B: LSQ size sweep for the Fig. 2 disambiguation categories,
//! * C: direction-predictor organization (gshare/bimodal/local/tournament),
//! * D: each technique alone over bypassing, isolating per-technique effects,
//! * E: the paper-sketched extensions (§5.1/§6/§5.2-refs),
//! * F: wrong-path fetch modeling (phantoms vs. stall),
//! * G: result significant-width distribution (the §6 premise),
//! * H: producer→consumer dependence distances (the §2 motivation).
//!
//! Usage: `cargo run --release -p popk-bench --bin ablations
//! [instr_budget] [--json] [--threads N] [--resume]`
//!
//! The sweep is journaled under `.popk/` at section granularity: with
//! `--resume` a run killed mid-sweep replays its finished sections from
//! the journal and re-runs only the interrupted one.

use popk_bench::{ablations_report_journaled, Cli, HostMeter, SweepJournal};
use std::path::Path;

fn main() {
    let cli = Cli::parse();
    let journal = SweepJournal::open(Path::new(".popk"), "ablations", cli.limit, "", cli.resume);
    let meter = HostMeter::start(cli.threads);
    let mut rep = ablations_report_journaled(cli.limit, cli.threads, Some(&journal));
    print!("{}", rep.text);
    println!("{}", meter.summary());
    if cli.json {
        rep.artifact.set("host", meter.host_json());
        rep.artifact.emit();
    }
    journal.finish();
}
