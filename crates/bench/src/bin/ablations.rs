//! Ablation sweeps beyond the paper's figures, exercising the design
//! choices DESIGN.md calls out:
//!
//! * A: gshare size sweep (how Fig. 6's detection CDF and accuracy move),
//! * B: LSQ size sweep for the Fig. 2 disambiguation categories,
//! * C: direction-predictor organization (gshare/bimodal/local/tournament),
//! * D: each technique alone over bypassing, isolating per-technique effects,
//! * E: the paper-sketched extensions (§5.1/§6/§5.2-refs),
//! * F: wrong-path fetch modeling (phantoms vs. stall),
//! * G: result significant-width distribution (the §6 premise),
//! * H: producer→consumer dependence distances (the §2 motivation).
//!
//! Usage: `cargo run --release -p popk-bench --bin ablations [instr_budget] [--json]`

#![allow(clippy::useless_vec)] // row! builds Vec rows; headers reuse it

use popk_bench::fmt::{f3, render};
use popk_bench::row;
use popk_bench::{Artifact, Cli};
use popk_bpred::{DirKind, FrontEndConfig};
use popk_characterize::{drive, BranchStudy, DisambigStudy, DistanceStudy, WidthStudy};
use popk_core::{simulate, Json, MachineConfig, Optimizations};
use popk_workloads::by_name;

fn main() {
    let cli = Cli::parse();
    let limit = cli.limit;
    let names = ["gcc", "li", "twolf"];
    let mut art = Artifact::new("ablations", limit);

    // ---- gshare size sweep -------------------------------------------
    println!("Ablation A: gshare size vs. accuracy and 8-bit detection ({limit} instrs)\n");
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for name in names {
        let p = by_name(name).unwrap().program();
        for bits in [10u32, 12, 14, 16] {
            let mut study = BranchStudy::new(bits);
            drive(&p, limit, &mut [&mut study]).unwrap();
            let r = study.report();
            rows.push(row![
                name,
                format!("{}K", (1u32 << bits) / 1024),
                format!("{:.1}%", 100.0 * r.accuracy()),
                format!("{:.0}%", r.percent_detected_within(8))
            ]);
            let mut o = Json::object();
            o.set("name", name.into());
            o.set("table_bits", Json::from(u64::from(bits)));
            o.set("accuracy", Json::from(r.accuracy()));
            o.set(
                "pct_detected_within_8b",
                Json::from(r.percent_detected_within(8)),
            );
            jrows.push(o);
        }
    }
    println!(
        "{}",
        render(
            &row!["benchmark", "entries", "accuracy", "detect ≤8b"],
            &rows
        )
    );
    art.set("gshare_sweep", Json::Array(jrows));

    // ---- LSQ size sweep ------------------------------------------------
    println!("Ablation B: LSQ window vs. loads resolved after 9 bits\n");
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for name in names {
        let p = by_name(name).unwrap().program();
        for lsq in [8usize, 16, 32, 64] {
            let mut study = DisambigStudy::new(lsq);
            drive(&p, limit, &mut [&mut study]).unwrap();
            let r = study.report();
            rows.push(row![name, lsq, format!("{:.1}%", r.resolved_after_bits(9))]);
            let mut o = Json::object();
            o.set("name", name.into());
            o.set("lsq_entries", Json::from(lsq));
            o.set(
                "pct_resolved_within_9b",
                Json::from(r.resolved_after_bits(9)),
            );
            jrows.push(o);
        }
    }
    println!(
        "{}",
        render(&row!["benchmark", "LSQ", "resolved ≤9b"], &rows)
    );
    art.set("lsq_sweep", Json::Array(jrows));

    // ---- bimodal vs gshare front end -----------------------------------
    println!("Ablation C: direction predictor organization on slice-by-2 (all techniques)\n");
    let kinds = [
        ("gshare", DirKind::Gshare),
        ("bimodal", DirKind::Bimodal),
        ("local", DirKind::Local),
        ("tournament", DirKind::Tournament),
    ];
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for name in names {
        let p = by_name(name).unwrap().program();
        let mut r = vec![name.to_string()];
        let mut o = Json::object();
        o.set("name", name.into());
        for (kname, kind) in kinds {
            let mut cfg = MachineConfig::slice2_full();
            cfg.frontend = FrontEndConfig {
                dir_kind: kind,
                ..FrontEndConfig::default()
            };
            let ipc = simulate(&p, &cfg, limit).ipc();
            r.push(f3(ipc));
            o.set(kname, Json::from(ipc));
        }
        rows.push(r);
        jrows.push(o);
    }
    println!(
        "{}",
        render(
            &row!["benchmark", "gshare", "bimodal", "local", "tournament"],
            &rows
        )
    );
    art.set("direction_predictor", Json::Array(jrows));

    // ---- single-technique isolation -------------------------------------
    println!("Ablation D: each technique alone on top of partial bypassing (slice-by-4)\n");
    let single = |f: fn(&mut Optimizations)| {
        let mut o = Optimizations::level(1);
        f(&mut o);
        o
    };
    let variants: [(&str, Optimizations); 5] = [
        ("bypass only", Optimizations::level(1)),
        ("+ooo slices", single(|o| o.ooo_slices = true)),
        ("+early branch", single(|o| o.early_branch = true)),
        ("+early disambig", single(|o| o.early_disambig = true)),
        ("+partial tag", single(|o| o.partial_tag = true)),
    ];
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for name in names {
        let p = by_name(name).unwrap().program();
        let mut r = vec![name.to_string()];
        let mut o = Json::object();
        o.set("name", name.into());
        for (vname, opts) in &variants {
            let s = simulate(&p, &MachineConfig::slice4(*opts), limit);
            r.push(f3(s.ipc()));
            o.set(vname, Json::from(s.ipc()));
        }
        rows.push(r);
        jrows.push(o);
    }
    let header: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(variants.iter().map(|(n, _)| n.to_string()))
        .collect();
    println!("{}", render(&header, &rows));
    art.set("single_technique", Json::Array(jrows));

    // ---- paper-sketched extensions --------------------------------------
    println!("Ablation E: paper-sketched extensions on top of all techniques (slice-by-2)\n");
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for name in ["gcc", "li", "twolf", "bzip", "vortex"] {
        let p = by_name(name).unwrap().program();
        let full = simulate(&p, &MachineConfig::slice2(Optimizations::all()), limit);
        let ext = simulate(&p, &MachineConfig::slice2(Optimizations::extended()), limit);
        let md = {
            let mut o = Optimizations::all();
            o.mem_dep_predict = true;
            simulate(&p, &MachineConfig::slice2(o), limit)
        };
        rows.push(row![
            name,
            f3(full.ipc()),
            f3(ext.ipc()),
            format!("{:+.1}%", 100.0 * (ext.ipc() / full.ipc() - 1.0)),
            ext.spec_forwards,
            ext.narrow_wakeups,
            ext.sam_starts,
            f3(md.ipc()),
            format!("{}/{}", md.mem_dep_speculations, md.mem_dep_violations)
        ]);
        let mut o = Json::object();
        o.set("name", name.into());
        o.set("all_ipc", Json::from(full.ipc()));
        o.set("extended_ipc", Json::from(ext.ipc()));
        o.set("spec_forwards", Json::from(ext.spec_forwards));
        o.set("narrow_wakeups", Json::from(ext.narrow_wakeups));
        o.set("sam_starts", Json::from(ext.sam_starts));
        o.set("memdep_ipc", Json::from(md.ipc()));
        o.set("mem_dep_speculations", Json::from(md.mem_dep_speculations));
        o.set("mem_dep_violations", Json::from(md.mem_dep_violations));
        jrows.push(o);
    }
    println!(
        "{}",
        render(
            &row![
                "benchmark",
                "all IPC",
                "ext IPC",
                "ext gain",
                "spec fwd",
                "narrow",
                "sam",
                "+memdep IPC",
                "specs/viol"
            ],
            &rows
        )
    );
    println!(
        "`extended()` = spec-forward + narrow + sum-addressed; the memory\n\
         dependence predictor is reported separately because its benefit is\n\
         workload-dependent (see EXPERIMENTS.md)."
    );
    art.set("extensions", Json::Array(jrows));

    // ---- wrong-path fetch modeling ---------------------------------------
    println!("\nAblation F: wrong-path fetch modeling (phantoms vs. fetch stall)\n");
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for name in ["go", "gcc", "parser", "twolf"] {
        let p = by_name(name).unwrap().program();
        let base = MachineConfig::slice2_full();
        let mut wp = base;
        wp.model_wrong_path = true;
        let a = simulate(&p, &base, limit);
        let b = simulate(&p, &wp, limit);
        rows.push(row![
            name,
            f3(a.ipc()),
            f3(b.ipc()),
            format!("{:+.2}%", 100.0 * (b.ipc() / a.ipc() - 1.0))
        ]);
        let mut o = Json::object();
        o.set("name", name.into());
        o.set("stall_model_ipc", Json::from(a.ipc()));
        o.set("phantom_model_ipc", Json::from(b.ipc()));
        jrows.push(o);
    }
    println!(
        "{}",
        render(
            &row!["benchmark", "stall-model IPC", "phantom-model IPC", "delta"],
            &rows
        )
    );
    println!(
        "Wrong-path pollution is second-order and non-monotone — the effect\n\
         the paper credits for bzip/gzip/li slightly exceeding the ideal\n\
         machine."
    );
    art.set("wrong_path", Json::Array(jrows));

    // ---- operand width distribution --------------------------------------
    println!("\nAblation G: result significant-width distribution (the §6 premise)\n");
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for w in popk_workloads::all() {
        let p = w.program();
        let mut study = WidthStudy::new();
        drive(&p, limit, &mut [&mut study]).unwrap();
        let r = study.report();
        rows.push(row![
            w.name,
            format!("{:.0}%", 100.0 * r.fraction_within(8)),
            format!("{:.0}%", 100.0 * r.fraction_within(16)),
            format!("{:.0}%", 100.0 * r.fraction_within(24)),
            format!("{:.1}", r.mean_width())
        ]);
        let mut o = Json::object();
        o.set("name", w.name.into());
        o.set("fraction_within_8b", Json::from(r.fraction_within(8)));
        o.set("fraction_within_16b", Json::from(r.fraction_within(16)));
        o.set("fraction_within_24b", Json::from(r.fraction_within(24)));
        o.set("mean_width_bits", Json::from(r.mean_width()));
        jrows.push(o);
    }
    println!(
        "{}",
        render(
            &row!["benchmark", "≤8 bits", "≤16 bits", "≤24 bits", "mean width"],
            &rows
        )
    );
    println!(
        "Most results are sign/zero extensions of a narrow low slice — the\n\
         empirical basis for the narrow-operand extension (refs [3], [6])."
    );
    art.set("width_distribution", Json::Array(jrows));

    // ---- dependence distances --------------------------------------------
    println!("\nAblation H: producer→consumer dependence distances (the §2 motivation)\n");
    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    for w in popk_workloads::all() {
        let p = w.program();
        let mut study = DistanceStudy::new();
        drive(&p, limit, &mut [&mut study]).unwrap();
        let r = study.report();
        rows.push(row![
            w.name,
            format!("{:.0}%", 100.0 * r.fraction_within(1)),
            format!("{:.0}%", 100.0 * r.fraction_within(2)),
            format!("{:.0}%", 100.0 * r.fraction_within(4)),
            format!("{:.0}%", 100.0 * r.fraction_within(8)),
            format!("{:.1}", r.mean_distance())
        ]);
        let mut o = Json::object();
        o.set("name", w.name.into());
        o.set("fraction_within_1", Json::from(r.fraction_within(1)));
        o.set("fraction_within_2", Json::from(r.fraction_within(2)));
        o.set("fraction_within_4", Json::from(r.fraction_within(4)));
        o.set("fraction_within_8", Json::from(r.fraction_within(8)));
        o.set("mean_distance", Json::from(r.mean_distance()));
        jrows.push(o);
    }
    println!(
        "{}",
        render(&row!["benchmark", "d=1", "≤2", "≤4", "≤8", "mean"], &rows)
    );
    println!(
        "A third to half of all source operands come from the immediately\n\
         preceding instructions — exactly the population naive EX\n\
         pipelining penalizes and partial bypassing rescues (Fig. 1)."
    );
    art.set("dependence_distance", Json::Array(jrows));

    if cli.json {
        art.emit();
    }
}
