//! Ablation sweeps beyond the paper's figures, exercising the design
//! choices DESIGN.md calls out:
//!
//! * A: gshare size sweep (how Fig. 6's detection CDF and accuracy move),
//! * B: LSQ size sweep for the Fig. 2 disambiguation categories,
//! * C: direction-predictor organization (gshare/bimodal/local/tournament),
//! * D: each technique alone over bypassing, isolating per-technique effects,
//! * E: the paper-sketched extensions (§5.1/§6/§5.2-refs),
//! * F: wrong-path fetch modeling (phantoms vs. stall),
//! * G: result significant-width distribution (the §6 premise),
//! * H: producer→consumer dependence distances (the §2 motivation).
//!
//! Usage: `cargo run --release -p popk-bench --bin ablations [instr_budget]`

#![allow(clippy::useless_vec)] // row! builds Vec rows; headers reuse it

use popk_bench::fmt::{f3, render};
use popk_bench::row;
use popk_bench::runners::arg_limit;
use popk_bpred::{DirKind, FrontEndConfig};
use popk_characterize::{drive, BranchStudy, DisambigStudy, DistanceStudy, WidthStudy};
use popk_core::{simulate, MachineConfig, Optimizations};
use popk_workloads::by_name;

fn main() {
    let limit = arg_limit();
    let names = ["gcc", "li", "twolf"];

    // ---- gshare size sweep -------------------------------------------
    println!("Ablation A: gshare size vs. accuracy and 8-bit detection ({limit} instrs)\n");
    let mut rows = Vec::new();
    for name in names {
        let p = by_name(name).unwrap().program();
        for bits in [10u32, 12, 14, 16] {
            let mut study = BranchStudy::new(bits);
            drive(&p, limit, &mut [&mut study]).unwrap();
            let r = study.report();
            rows.push(row![
                name,
                format!("{}K", (1u32 << bits) / 1024),
                format!("{:.1}%", 100.0 * r.accuracy()),
                format!("{:.0}%", r.percent_detected_within(8))
            ]);
        }
    }
    println!(
        "{}",
        render(&row!["benchmark", "entries", "accuracy", "detect ≤8b"], &rows)
    );

    // ---- LSQ size sweep ------------------------------------------------
    println!("Ablation B: LSQ window vs. loads resolved after 9 bits\n");
    let mut rows = Vec::new();
    for name in names {
        let p = by_name(name).unwrap().program();
        for lsq in [8usize, 16, 32, 64] {
            let mut study = DisambigStudy::new(lsq);
            drive(&p, limit, &mut [&mut study]).unwrap();
            let r = study.report();
            rows.push(row![
                name,
                lsq,
                format!("{:.1}%", r.resolved_after_bits(9))
            ]);
        }
    }
    println!(
        "{}",
        render(&row!["benchmark", "LSQ", "resolved ≤9b"], &rows)
    );

    // ---- bimodal vs gshare front end -----------------------------------
    println!("Ablation C: direction predictor organization on slice-by-2 (all techniques)\n");
    let mut rows = Vec::new();
    for name in names {
        let p = by_name(name).unwrap().program();
        let mut r = vec![name.to_string()];
        for kind in [DirKind::Gshare, DirKind::Bimodal, DirKind::Local, DirKind::Tournament] {
            let mut cfg = MachineConfig::slice2_full();
            cfg.frontend = FrontEndConfig { dir_kind: kind, ..FrontEndConfig::default() };
            r.push(f3(simulate(&p, &cfg, limit).ipc()));
        }
        rows.push(r);
    }
    println!(
        "{}",
        render(
            &row!["benchmark", "gshare", "bimodal", "local", "tournament"],
            &rows
        )
    );

    // ---- single-technique isolation -------------------------------------
    println!("Ablation D: each technique alone on top of partial bypassing (slice-by-4)\n");
    let single = |f: fn(&mut Optimizations)| {
        let mut o = Optimizations::level(1);
        f(&mut o);
        o
    };
    let variants: [(&str, Optimizations); 5] = [
        ("bypass only", Optimizations::level(1)),
        ("+ooo slices", single(|o| o.ooo_slices = true)),
        ("+early branch", single(|o| o.early_branch = true)),
        ("+early disambig", single(|o| o.early_disambig = true)),
        ("+partial tag", single(|o| o.partial_tag = true)),
    ];
    let mut rows = Vec::new();
    for name in names {
        let p = by_name(name).unwrap().program();
        let mut r = vec![name.to_string()];
        for (_, opts) in &variants {
            let s = simulate(&p, &MachineConfig::slice4(*opts), limit);
            r.push(f3(s.ipc()));
        }
        rows.push(r);
    }
    let header: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(variants.iter().map(|(n, _)| n.to_string()))
        .collect();
    println!("{}", render(&header, &rows));

    // ---- paper-sketched extensions --------------------------------------
    println!("Ablation E: paper-sketched extensions on top of all techniques (slice-by-2)\n");
    let mut rows = Vec::new();
    for name in ["gcc", "li", "twolf", "bzip", "vortex"] {
        let p = by_name(name).unwrap().program();
        let full = simulate(&p, &MachineConfig::slice2(Optimizations::all()), limit);
        let ext = simulate(&p, &MachineConfig::slice2(Optimizations::extended()), limit);
        let md = {
            let mut o = Optimizations::all();
            o.mem_dep_predict = true;
            simulate(&p, &MachineConfig::slice2(o), limit)
        };
        rows.push(row![
            name,
            f3(full.ipc()),
            f3(ext.ipc()),
            format!("{:+.1}%", 100.0 * (ext.ipc() / full.ipc() - 1.0)),
            ext.spec_forwards,
            ext.narrow_wakeups,
            ext.sam_starts,
            f3(md.ipc()),
            format!("{}/{}", md.mem_dep_speculations, md.mem_dep_violations)
        ]);
    }
    println!(
        "{}",
        render(
            &row![
                "benchmark",
                "all IPC",
                "ext IPC",
                "ext gain",
                "spec fwd",
                "narrow",
                "sam",
                "+memdep IPC",
                "specs/viol"
            ],
            &rows
        )
    );
    println!(
        "`extended()` = spec-forward + narrow + sum-addressed; the memory\n\
         dependence predictor is reported separately because its benefit is\n\
         workload-dependent (see EXPERIMENTS.md)."
    );

    // ---- wrong-path fetch modeling ---------------------------------------
    println!("\nAblation F: wrong-path fetch modeling (phantoms vs. fetch stall)\n");
    let mut rows = Vec::new();
    for name in ["go", "gcc", "parser", "twolf"] {
        let p = by_name(name).unwrap().program();
        let base = MachineConfig::slice2_full();
        let mut wp = base;
        wp.model_wrong_path = true;
        let a = simulate(&p, &base, limit);
        let b = simulate(&p, &wp, limit);
        rows.push(row![
            name,
            f3(a.ipc()),
            f3(b.ipc()),
            format!("{:+.2}%", 100.0 * (b.ipc() / a.ipc() - 1.0))
        ]);
    }
    println!(
        "{}",
        render(
            &row!["benchmark", "stall-model IPC", "phantom-model IPC", "delta"],
            &rows
        )
    );
    println!(
        "Wrong-path pollution is second-order and non-monotone — the effect\n\
         the paper credits for bzip/gzip/li slightly exceeding the ideal\n\
         machine."
    );

    // ---- operand width distribution --------------------------------------
    println!("\nAblation G: result significant-width distribution (the §6 premise)\n");
    let mut rows = Vec::new();
    for w in popk_workloads::all() {
        let p = w.program();
        let mut study = WidthStudy::new();
        drive(&p, limit, &mut [&mut study]).unwrap();
        let r = study.report();
        rows.push(row![
            w.name,
            format!("{:.0}%", 100.0 * r.fraction_within(8)),
            format!("{:.0}%", 100.0 * r.fraction_within(16)),
            format!("{:.0}%", 100.0 * r.fraction_within(24)),
            format!("{:.1}", r.mean_width())
        ]);
    }
    println!(
        "{}",
        render(
            &row!["benchmark", "≤8 bits", "≤16 bits", "≤24 bits", "mean width"],
            &rows
        )
    );
    println!(
        "Most results are sign/zero extensions of a narrow low slice — the\n\
         empirical basis for the narrow-operand extension (refs [3], [6])."
    );

    // ---- dependence distances --------------------------------------------
    println!("\nAblation H: producer→consumer dependence distances (the §2 motivation)\n");
    let mut rows = Vec::new();
    for w in popk_workloads::all() {
        let p = w.program();
        let mut study = DistanceStudy::new();
        drive(&p, limit, &mut [&mut study]).unwrap();
        let r = study.report();
        rows.push(row![
            w.name,
            format!("{:.0}%", 100.0 * r.fraction_within(1)),
            format!("{:.0}%", 100.0 * r.fraction_within(2)),
            format!("{:.0}%", 100.0 * r.fraction_within(4)),
            format!("{:.0}%", 100.0 * r.fraction_within(8)),
            format!("{:.1}", r.mean_distance())
        ]);
    }
    println!(
        "{}",
        render(
            &row!["benchmark", "d=1", "≤2", "≤4", "≤8", "mean"],
            &rows
        )
    );
    println!(
        "A third to half of all source operands come from the immediately\n\
         preceding instructions — exactly the population naive EX\n\
         pipelining penalizes and partial bypassing rescues (Fig. 1)."
    );
}
