//! Compare any two machine configurations across the full workload suite.
//!
//! Usage:
//! `cargo run --release -p popk-bench --bin compare [cfgA] [cfgB]
//! [limit] [--json] [--threads N]`
//!
//! Configs: ideal | simple2 | simple4 | slice2-N (cumulative level N) |
//! slice4-N | slice2 | slice4 (= level 5) | ext2 | ext4.
//! Default: `slice2 ideal`.

use popk_bench::{compare_report, parse_config, Cli, HostMeter};

fn main() {
    let cli = Cli::parse();
    // Config names are the non-flag, non-numeric tokens ([`Cli`] already
    // consumed the budget and the `--threads` value).
    let names: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| parse_config(a).is_some())
        .collect();
    let a_name = names.first().map(String::as_str).unwrap_or("slice2");
    let b_name = names.get(1).map(String::as_str).unwrap_or("ideal");

    let meter = HostMeter::start(cli.threads);
    let Some(mut rep) = compare_report(a_name, b_name, cli.limit, cli.threads) else {
        eprintln!("unknown config (try: ideal simple2 simple4 slice2 slice4 slice2-3 ext2 …)");
        std::process::exit(1);
    };
    print!("{}", rep.text);
    println!("{}", meter.summary());
    if cli.json {
        rep.artifact.set("host", meter.host_json());
        rep.artifact.emit();
    }
    if rep.failures > 0 {
        std::process::exit(1);
    }
}
