//! Compare any two machine configurations across the full workload suite.
//!
//! Usage:
//! `cargo run --release -p popk-bench --bin compare [cfgA] [cfgB] [limit]`
//!
//! Configs: ideal | simple2 | simple4 | slice2-N (cumulative level N) |
//! slice4-N | slice2 | slice4 (= level 5) | ext2 | ext4.
//! Default: `slice2 ideal`.

#![allow(clippy::useless_vec)] // row! builds Vec rows; headers reuse it

use popk_bench::fmt::{f3, render};
use popk_bench::row;
use popk_core::{simulate, MachineConfig, Optimizations, SimStats};
use popk_workloads::all;
use std::sync::Mutex;

fn parse(name: &str) -> Option<MachineConfig> {
    if let Some(level) = name.strip_prefix("slice2-") {
        return Some(MachineConfig::slice2(Optimizations::level(
            level.parse().ok()?,
        )));
    }
    if let Some(level) = name.strip_prefix("slice4-") {
        return Some(MachineConfig::slice4(Optimizations::level(
            level.parse().ok()?,
        )));
    }
    Some(match name {
        "ideal" => MachineConfig::ideal(),
        "simple2" => MachineConfig::simple2(),
        "simple4" => MachineConfig::simple4(),
        "slice2" => MachineConfig::slice2_full(),
        "slice4" => MachineConfig::slice4_full(),
        "ext2" => MachineConfig::slice2(Optimizations::extended()),
        "ext4" => MachineConfig::slice4(Optimizations::extended()),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let a_name = args.first().map(String::as_str).unwrap_or("slice2");
    let b_name = args.get(1).map(String::as_str).unwrap_or("ideal");
    let limit: u64 = args
        .get(2)
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(200_000);
    let (Some(a_cfg), Some(b_cfg)) = (parse(a_name), parse(b_name)) else {
        eprintln!("unknown config (try: ideal simple2 simple4 slice2 slice4 slice2-3 ext2 …)");
        std::process::exit(1);
    };

    println!("{a_name} vs {b_name} ({limit} instructions per run)\n");
    let workloads = all();
    let slots: Vec<Mutex<Option<(SimStats, SimStats)>>> =
        workloads.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (w, slot) in workloads.iter().zip(&slots) {
            scope.spawn(move || {
                let p = w.program();
                let a = simulate(&p, &a_cfg, limit);
                let b = simulate(&p, &b_cfg, limit);
                *slot.lock().unwrap() = Some((a, b));
            });
        }
    });

    let mut rows = Vec::new();
    let mut log_sum = 0.0f64;
    for (w, slot) in workloads.iter().zip(&slots) {
        let (a, b) = slot.lock().unwrap().take().unwrap();
        let ratio = a.ipc() / b.ipc();
        log_sum += ratio.ln();
        rows.push(row![
            w.name,
            f3(a.ipc()),
            f3(b.ipc()),
            format!("{:+.1}%", 100.0 * (ratio - 1.0)),
            a.cycles,
            b.cycles
        ]);
    }
    println!(
        "{}",
        render(
            &row![
                "benchmark",
                format!("{a_name} IPC"),
                format!("{b_name} IPC"),
                "delta",
                format!("{a_name} cyc"),
                format!("{b_name} cyc")
            ],
            &rows
        )
    );
    let geo = (log_sum / workloads.len() as f64).exp();
    println!(
        "geomean IPC ratio {a_name}/{b_name}: {:.3} ({:+.1}%)",
        geo,
        100.0 * (geo - 1.0)
    );
}
