//! Reproduce **Figure 11**: IPC of the bit-sliced microarchitecture vs.
//! the ideal (unpipelined EX) machine and simple pipelining, for
//! slice-by-2 and slice-by-4, with the five techniques applied
//! cumulatively. Also prints the Fig. 10 pipeline configurations and the
//! §7.1 way-mispredict statistic.
//!
//! Usage: `cargo run --release -p popk-bench --bin fig11
//! [instr_budget] [--json] [--threads N]`

use popk_bench::{fig11_report, Cli, HostMeter};

fn main() {
    let cli = Cli::parse();
    let meter = HostMeter::start(cli.threads);
    let mut rep = fig11_report(cli.limit, cli.threads);
    print!("{}", rep.text);
    println!("{}", meter.summary());
    if cli.json {
        rep.artifact.set("host", meter.host_json());
        rep.artifact.emit();
    }
    if rep.failures > 0 {
        std::process::exit(1);
    }
}
