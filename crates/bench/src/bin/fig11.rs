//! Reproduce **Figure 11**: IPC of the bit-sliced microarchitecture vs.
//! the ideal (unpipelined EX) machine and simple pipelining, for
//! slice-by-2 and slice-by-4, with the five techniques applied
//! cumulatively. Also prints the Fig. 10 pipeline configurations and the
//! §7.1 way-mispredict statistic.
//!
//! Usage: `cargo run --release -p popk-bench --bin fig11
//! [instr_budget] [--json] [--threads N] [--resume]`
//!
//! The sweep is journaled under `.popk/`: with `--resume` a run killed
//! mid-sweep replays its completed rows from the journal and restarts
//! the interrupted row from its last checkpoint.

use popk_bench::{fig11_report_journaled, Cli, HostMeter, SweepJournal};
use std::path::Path;

fn main() {
    let cli = Cli::parse();
    let journal = SweepJournal::open(Path::new(".popk"), "fig11", cli.limit, "", cli.resume);
    let meter = HostMeter::start(cli.threads);
    let mut rep = fig11_report_journaled(cli.limit, cli.threads, Some(&journal));
    print!("{}", rep.text);
    println!("{}", meter.summary());
    if cli.json {
        rep.artifact.set("host", meter.host_json());
        rep.artifact.emit();
    }
    if rep.failures > 0 {
        std::process::exit(1);
    }
    journal.finish();
}
