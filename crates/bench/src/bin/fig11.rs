//! Reproduce **Figure 11**: IPC of the bit-sliced microarchitecture vs.
//! the ideal (unpipelined EX) machine and simple pipelining, for
//! slice-by-2 and slice-by-4, with the five techniques applied
//! cumulatively. Also prints the Fig. 10 pipeline configurations and the
//! §7.1 way-mispredict statistic.
//!
//! Usage: `cargo run --release -p popk-bench --bin fig11 [instr_budget] [--json]`

use popk_bench::artifact::counters_json;
use popk_bench::fmt::{f3, render};
use popk_bench::{fig11, Artifact, Cli, Fig11Data};
use popk_core::{Json, Optimizations};

fn main() {
    let cli = Cli::parse();
    let limit = cli.limit;
    println!("Figure 10 pipeline configurations (frequency held constant):");
    println!("  base      : Fetch1..RF2 (12) | EX          | Mem RE CT");
    println!("  slice-by-2: Fetch1..RF2 (12) | EX1 EX2     | Mem RE CT");
    println!("  slice-by-4: Fetch1..RF2 (12) | EX1..EX4    | Mem RE CT (L1D 2 cycles)\n");
    println!("Figure 11: IPC stacks ({limit} instructions per run)\n");

    let data = fig11(limit);
    for (by4, cols) in [(false, &data.slice2), (true, &data.slice4)] {
        let n = if by4 { 4 } else { 2 };
        println!("== {n} slices ==\n");
        let header: Vec<String> = std::iter::once("benchmark".to_string())
            .chain((0..=5).map(|l| Optimizations::level_name(l).to_string()))
            .chain(std::iter::once("ideal".to_string()))
            .collect();
        let rows: Vec<Vec<String>> = cols
            .iter()
            .map(|c| {
                let mut r = vec![c.name.to_string()];
                r.extend(c.level_ipc.iter().map(|&v| f3(v)));
                r.push(f3(c.ideal_ipc));
                r
            })
            .collect();
        println!("{}", render(&header, &rows));

        let vs_ideal = data.mean_full_vs_ideal(by4);
        let speedup = data.mean_speedup(by4);
        println!(
            "geomean: all-techniques IPC = {:.1}% of ideal ({}); speedup over simple pipelining = {:+.1}%\n",
            100.0 * vs_ideal,
            if by4 {
                "paper: 18% below ideal"
            } else {
                "paper: within ~1% of ideal"
            },
            100.0 * (speedup - 1.0),
        );
        let avg_way_miss: f64 =
            cols.iter().map(|c| c.way_mispredict_rate).sum::<f64>() / cols.len() as f64;
        println!(
            "avg partial-tag way-mispredict rate: {:.1}% (paper: ~{}%)\n",
            100.0 * avg_way_miss,
            if by4 { 1 } else { 2 },
        );
    }

    if cli.json {
        let mut art = Artifact::new("fig11", limit);
        art.set(
            "levels",
            (0..=5)
                .map(|l| Json::from(Optimizations::level_name(l)))
                .collect(),
        );
        art.set("slice2", slice_json(&data, false));
        art.set("slice4", slice_json(&data, true));
        art.emit();
    }
}

/// One slicing factor's Fig. 11 results: per-workload IPC at every
/// cumulative level plus the ideal machine, the full-config counter
/// snapshot, and the geomean summary lines.
fn slice_json(data: &Fig11Data, by4: bool) -> Json {
    let cols = if by4 { &data.slice4 } else { &data.slice2 };
    let workloads: Vec<Json> = cols
        .iter()
        .map(|c| {
            let mut o = Json::object();
            o.set("name", c.name.into());
            o.set("ideal_ipc", Json::from(c.ideal_ipc));
            o.set(
                "level_ipc",
                c.level_ipc.iter().map(|&v| Json::from(v)).collect(),
            );
            o.set("way_mispredict_rate", Json::from(c.way_mispredict_rate));
            o.set("counters", counters_json(&c.full_stats));
            o
        })
        .collect();
    let mut s = Json::object();
    s.set("workloads", Json::Array(workloads));
    s.set(
        "geomean_full_vs_ideal",
        Json::from(data.mean_full_vs_ideal(by4)),
    );
    s.set("geomean_speedup", Json::from(data.mean_speedup(by4)));
    s
}
