//! Reproduce **Table 1**: baseline characteristics of the benchmark
//! suite on the ideal (unpipelined-EX) Table 2 machine.
//!
//! Usage: `cargo run --release -p popk-bench --bin table1 [instr_budget] [--json]`

#![allow(clippy::useless_vec)] // row! builds Vec rows; headers reuse it

use popk_bench::fmt::{f3, pct, render};
use popk_bench::row;
use popk_bench::{table1, Artifact, Cli};
use popk_core::Json;

fn main() {
    let cli = Cli::parse();
    let limit = cli.limit;
    println!("Table 1: benchmark characteristics (ideal machine, {limit} instructions)\n");
    let rows = table1(limit);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            row![
                r.name,
                r.instructions,
                f3(r.ipc),
                pct(r.pct_loads),
                pct(r.pct_stores),
                pct(r.branch_accuracy)
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &row![
                "benchmark",
                "instrs",
                "IPC",
                "% loads",
                "% stores",
                "branch acc"
            ],
            &table
        )
    );
    let mean_ipc = (rows.iter().map(|r| r.ipc.ln()).sum::<f64>() / rows.len() as f64).exp();
    println!("geometric-mean IPC: {mean_ipc:.3}");

    if cli.json {
        let workloads: Vec<Json> = rows
            .iter()
            .map(|r| {
                let mut o = Json::object();
                o.set("name", r.name.into());
                o.set("instructions", Json::from(r.instructions));
                o.set("ipc", Json::from(r.ipc));
                o.set("pct_loads", Json::from(r.pct_loads));
                o.set("pct_stores", Json::from(r.pct_stores));
                o.set("branch_accuracy", Json::from(r.branch_accuracy));
                o
            })
            .collect();
        let mut art = Artifact::new("table1", limit);
        art.set("workloads", Json::Array(workloads));
        art.set("geomean_ipc", Json::from(mean_ipc));
        art.emit();
    }
}
