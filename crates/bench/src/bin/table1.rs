//! Reproduce **Table 1**: baseline characteristics of the benchmark
//! suite on the ideal (unpipelined-EX) Table 2 machine.
//!
//! Usage: `cargo run --release -p popk-bench --bin table1
//! [instr_budget] [--json] [--threads N] [--oracle] [--resume]`
//!
//! With `--oracle`, every simulation runs the functional machine in
//! commit-time lockstep with the timing pipeline and any divergence is
//! reported as a row failure; the process exits nonzero if any remain.
//!
//! The sweep is journaled under `.popk/`: with `--resume` a run killed
//! mid-sweep replays its completed rows from the journal and restarts
//! the interrupted row from its last checkpoint.

use popk_bench::{table1_report_journaled, Cli, HostMeter, SweepJournal};
use std::path::Path;

fn main() {
    let cli = Cli::parse();
    let journal = SweepJournal::open(
        Path::new(".popk"),
        "table1",
        cli.limit,
        &format!("oracle={}", cli.oracle),
        cli.resume,
    );
    let meter = HostMeter::start(cli.threads);
    let mut rep = table1_report_journaled(cli.limit, cli.threads, cli.oracle, Some(&journal));
    print!("{}", rep.text);
    println!("{}", meter.summary());
    if cli.json {
        rep.artifact.set("host", meter.host_json());
        rep.artifact.emit();
    }
    if rep.failures > 0 {
        std::process::exit(1);
    }
    journal.finish();
}
