//! Reproduce **Table 1**: baseline characteristics of the benchmark
//! suite on the ideal (unpipelined-EX) Table 2 machine.
//!
//! Usage: `cargo run --release -p popk-bench --bin table1
//! [instr_budget] [--json] [--threads N]`

use popk_bench::{table1_report, Cli, HostMeter};

fn main() {
    let cli = Cli::parse();
    let meter = HostMeter::start(cli.threads);
    let mut rep = table1_report(cli.limit, cli.threads);
    print!("{}", rep.text);
    println!("{}", meter.summary());
    if cli.json {
        rep.artifact.set("host", meter.host_json());
        rep.artifact.emit();
    }
}
