//! Reproduce **Table 1**: baseline characteristics of the benchmark
//! suite on the ideal (unpipelined-EX) Table 2 machine.
//!
//! Usage: `cargo run --release -p popk-bench --bin table1 [instr_budget]`

#![allow(clippy::useless_vec)] // row! builds Vec rows; headers reuse it

use popk_bench::fmt::{f3, pct, render};
use popk_bench::{arg_limit, table1};
use popk_bench::row;

fn main() {
    let limit = arg_limit();
    println!("Table 1: benchmark characteristics (ideal machine, {limit} instructions)\n");
    let rows = table1(limit);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            row![
                r.name,
                r.instructions,
                f3(r.ipc),
                pct(r.pct_loads),
                pct(r.pct_stores),
                pct(r.branch_accuracy)
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &row!["benchmark", "instrs", "IPC", "% loads", "% stores", "branch acc"],
            &table
        )
    );
    let mean_ipc = rows.iter().map(|r| r.ipc.ln()).sum::<f64>() / rows.len() as f64;
    println!("geometric-mean IPC: {:.3}", mean_ipc.exp());
}
