//! Reproduce **Table 1**: baseline characteristics of the benchmark
//! suite on the ideal (unpipelined-EX) Table 2 machine.
//!
//! Usage: `cargo run --release -p popk-bench --bin table1
//! [instr_budget] [--json] [--threads N] [--oracle]`
//!
//! With `--oracle`, every simulation runs the functional machine in
//! commit-time lockstep with the timing pipeline and any divergence is
//! reported as a row failure; the process exits nonzero if any remain.

use popk_bench::{table1_report_with, Cli, HostMeter};

fn main() {
    let cli = Cli::parse();
    let meter = HostMeter::start(cli.threads);
    let mut rep = table1_report_with(cli.limit, cli.threads, cli.oracle);
    print!("{}", rep.text);
    println!("{}", meter.summary());
    if cli.json {
        rep.artifact.set("host", meter.host_json());
        rep.artifact.emit();
    }
    if rep.failures > 0 {
        std::process::exit(1);
    }
}
