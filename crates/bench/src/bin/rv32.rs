//! RV32 suite sweep: per-workload IPC across the headline machine
//! configurations, through the same timing core as the PISA figures via
//! the ISA-neutral micro-op boundary.
//!
//! Usage: `cargo run --release -p popk-bench --bin rv32
//! [instr_budget] [--json] [--threads N] [--oracle]`
//!
//! With `--oracle`, every simulation replays the RV32 functional
//! machine in commit-time lockstep with the timing pipeline and any
//! divergence is reported as a row failure; the process exits nonzero
//! if any remain.

use popk_bench::{rv32_report_with, Cli, HostMeter};

fn main() {
    let cli = Cli::parse();
    let meter = HostMeter::start(cli.threads);
    let mut rep = rv32_report_with(cli.limit, cli.threads, cli.oracle);
    print!("{}", rep.text);
    println!("{}", meter.summary());
    if cli.json {
        rep.artifact.set("host", meter.host_json());
        rep.artifact.emit();
    }
    if rep.failures > 0 {
        std::process::exit(1);
    }
}
