//! A minimal wall-clock timing harness for the workspace's
//! `harness = false` benchmarks.
//!
//! The offline build cannot depend on criterion, so the bench binaries
//! measure with this instead: warm up once, then repeat the closure until
//! a time floor is reached, reporting best and mean wall time per
//! iteration. Numbers are indicative (no outlier rejection, no
//! statistics), which is all the regression checks here need.

use std::time::Instant;

/// Result of timing one benchmark case.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Fastest observed iteration, in nanoseconds.
    pub best_ns: f64,
    /// Mean over all timed iterations, in nanoseconds.
    pub mean_ns: f64,
    /// Number of timed iterations.
    pub iters: u32,
}

impl Sample {
    /// Throughput in elements per second given `elems` processed per
    /// iteration, based on the best time.
    pub fn elems_per_sec(&self, elems: u64) -> f64 {
        elems as f64 / (self.best_ns / 1e9)
    }
}

/// Render nanoseconds with an adaptive unit.
pub fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Time `f` until at least `min_iters` iterations and ~200 ms of wall
/// time have elapsed (capped at 1000 iterations), after one untimed
/// warm-up call. Prints one report line and returns the sample.
pub fn bench<R>(label: &str, min_iters: u32, mut f: impl FnMut() -> R) -> Sample {
    std::hint::black_box(f()); // warm-up
    let floor = std::time::Duration::from_millis(200);
    let started = Instant::now();
    let mut best = f64::INFINITY;
    let mut total = 0.0f64;
    let mut iters = 0u32;
    while iters < min_iters || (started.elapsed() < floor && iters < 1000) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let ns = t0.elapsed().as_nanos() as f64;
        best = best.min(ns);
        total += ns;
        iters += 1;
    }
    let sample = Sample {
        best_ns: best,
        mean_ns: total / iters as f64,
        iters,
    };
    println!(
        "{label:<44} best {:>10}   mean {:>10}   ({} iters)",
        human_ns(sample.best_ns),
        human_ns(sample.mean_ns),
        sample.iters
    );
    sample
}
