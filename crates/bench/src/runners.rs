//! Experiment runners, one per table/figure.

use crate::journal::SweepJournal;
use crate::pool;
use popk_cache::CacheConfig;
use popk_characterize::{
    drive, BranchReport, BranchStudy, DisambigReport, DisambigStudy, TagMatchReport, TagMatchStudy,
};
use popk_core::{
    simulate, try_simulate, try_simulate_checkpointed, Checkpoint, CheckpointPlan, MachineConfig,
    Optimizations, SimError, SimStats,
};
use popk_isa::Program;
use popk_workloads::{all, by_name, Workload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default dynamic-instruction budget per simulation. The paper simulates
/// 500 M per benchmark on native hardware; this default keeps a full
/// figure regeneration in the minutes range on one host while leaving the
/// steady-state behaviour representative. Every binary accepts a budget
/// as its first CLI argument.
pub const DEFAULT_LIMIT: u64 = 200_000;

/// Read the dynamic-instruction budget from the first CLI argument
/// (used by every report binary), falling back to [`DEFAULT_LIMIT`].
pub fn arg_limit() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|a| a.replace('_', "").parse().ok())
        .unwrap_or(DEFAULT_LIMIT)
}

// ---- sweep throughput meter ------------------------------------------------

/// Process-wide count of simulation/characterization jobs completed and
/// dynamic instructions processed, feeding the artifacts' `host` block
/// (see [`crate::artifact::HostMeter`]). Relaxed atomics: pool workers
/// only ever add, readers only ever need a monotone snapshot.
static METER_JOBS: AtomicU64 = AtomicU64::new(0);
static METER_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Record one completed job that processed `instructions` dynamic
/// instructions.
pub(crate) fn meter_record(instructions: u64) {
    METER_JOBS.fetch_add(1, Ordering::Relaxed);
    METER_INSTRUCTIONS.fetch_add(instructions, Ordering::Relaxed);
}

/// Snapshot of (jobs completed, instructions processed) so far in this
/// process.
pub fn meter_snapshot() -> (u64, u64) {
    (
        METER_JOBS.load(Ordering::Relaxed),
        METER_INSTRUCTIONS.load(Ordering::Relaxed),
    )
}

/// [`simulate`] plus meter accounting — every runner-issued simulation
/// goes through here so the artifacts' Minsts/s reflects real work.
pub(crate) fn sim(program: &Program, cfg: &MachineConfig, limit: u64) -> SimStats {
    let s = simulate(program, cfg, limit);
    meter_record(s.committed);
    s
}

/// Fallible variant of [`sim`] for the panic-isolated sweeps: simulator
/// errors (oracle divergence, deadlock, invalid config) come back as
/// [`SimError`] instead of aborting the sweep. Successes are metered.
pub(crate) fn try_sim(
    program: &Program,
    cfg: &MachineConfig,
    limit: u64,
) -> Result<SimStats, SimError> {
    let s = try_simulate(program, cfg, limit)?;
    meter_record(s.committed);
    Ok(s)
}

// ---- journaled rows --------------------------------------------------------

/// How often a journaled row checkpoints: a handful of snapshots per
/// run, but never more often than every thousand commits (tiny test
/// budgets would otherwise spend their time serializing).
pub(crate) fn checkpoint_interval(limit: u64) -> u64 {
    (limit / 4).max(1_000)
}

/// Run one journaled sweep row on the PISA frontend.
///
/// Without a journal this is exactly [`try_sim`]. With one:
///
/// - a row the journal replayed as `done` returns its recorded
///   [`SimStats`] without simulating (the exact-u64 JSON round-trip);
/// - an interrupted row with a valid checkpoint resumes through it —
///   the run replays deterministically and cross-verifies the stored
///   architectural state at the checkpoint's commit count;
/// - either way the run emits periodic checkpoints to the journal's
///   per-row path and records `done` (with the full counters) on
///   success.
///
/// A checkpoint that fails identity validation (config or budget
/// changed between runs) or is defective on disk is discarded and the
/// row restarts from zero — always sound, never silently wrong.
pub(crate) fn journaled_sim(
    journal: Option<&SweepJournal>,
    row: &str,
    workload: &str,
    program: &Program,
    cfg: &MachineConfig,
    limit: u64,
) -> Result<SimStats, SimError> {
    let Some(j) = journal else {
        return try_sim(program, cfg, limit);
    };
    if let Some(stats) = j.completed(row).and_then(SimStats::from_json) {
        return Ok(stats); // replayed, nothing simulated: not metered
    }
    let resume_from = j.load_checkpoint(row).filter(|c| {
        c.validate_for("pisa", workload, cfg.fingerprint(), limit)
            .map_err(|e| eprintln!("warning: checkpoint for row `{row}` not resumable ({e})"))
            .is_ok()
    });
    j.record_start(row);
    let path = j.checkpoint_path(row);
    let plan = CheckpointPlan {
        workload: workload.to_string(),
        config_hash: cfg.fingerprint(),
        limit,
        interval: checkpoint_interval(limit),
        sink: Some(Box::new(move |c: Checkpoint| {
            // Persistence is advisory: a failed save costs resume
            // granularity, not correctness.
            let _ = c.save(&path);
        })),
        resume_from,
    };
    let s = try_simulate_checkpointed(program, cfg, limit, plan)?;
    meter_record(s.committed);
    j.record_done(row, s.to_json());
    Ok(s)
}

// ---- sweep failures --------------------------------------------------------

/// One (workload × config) sweep job that could not produce statistics:
/// either the simulator returned a [`SimError`] or the job panicked on
/// every attempt.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// Workload name of the failed job.
    pub workload: &'static str,
    /// Human-readable label of the machine configuration the job ran.
    pub config: String,
    /// What went wrong: the [`SimError`] display or the panic payload.
    pub message: String,
    /// Attempts made (1 for a typed simulator error, which is
    /// deterministic; [`pool::JOB_ATTEMPTS`] for a panic).
    pub attempts: u32,
}

impl SweepFailure {
    fn from_sim(workload: &'static str, config: &str, e: &SimError) -> SweepFailure {
        SweepFailure {
            workload,
            config: config.to_string(),
            message: e.to_string(),
            attempts: 1,
        }
    }

    fn from_panic(workload: &'static str, config: &str, f: pool::JobFailure) -> SweepFailure {
        SweepFailure {
            workload,
            config: config.to_string(),
            message: f.message,
            attempts: f.attempts,
        }
    }
}

/// Test seam for the panic-isolation path: a workload name whose sweep
/// jobs panic on entry, simulating a poisoned job without needing a
/// genuinely crashing simulation. `None` (the default) disables it.
static POISONED_WORKLOAD: Mutex<Option<String>> = Mutex::new(None);

/// Mark `name`'s sweep jobs as poisoned (they panic on entry), or clear
/// the poison with `None`. Testing hook only — not part of the API.
#[doc(hidden)]
pub fn set_poisoned_workload(name: Option<&str>) {
    *POISONED_WORKLOAD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = name.map(str::to_string);
}

/// Panic if `name` is the currently poisoned workload. Called at the top
/// of every panic-isolated sweep job. The deliberate panic happens with
/// the lock already released (and a lock poisoned by a panicking worker
/// is recovered), so one poisoned job never wedges the rest of a sweep.
pub(crate) fn poison_check(name: &str) {
    let matched = POISONED_WORKLOAD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .as_deref()
        == Some(name);
    if matched {
        panic!("poisoned workload {name}");
    }
}

/// [`drive`] (functional emulation for the characterization studies)
/// plus meter accounting of the instructions actually traced.
pub(crate) fn drive_counted(
    program: &Program,
    limit: u64,
    sinks: &mut [&mut dyn popk_characterize::TraceSink],
) {
    let n = drive(program, limit, sinks).expect("emulation");
    meter_record(n);
}

/// Run `f` for every workload across the job pool, returning results in
/// the registry order.
fn per_workload<T: Send>(threads: usize, f: impl Fn(&Workload) -> T + Sync) -> Vec<T> {
    pool::map_jobs(threads, &all(), f)
}

// ---- Table 1 --------------------------------------------------------------

/// One row of Table 1.
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Instructions simulated for the timing column.
    pub instructions: u64,
    /// Baseline (ideal EX) IPC.
    pub ipc: f64,
    /// Load fraction of committed instructions.
    pub pct_loads: f64,
    /// Store fraction.
    pub pct_stores: f64,
    /// Conditional-branch direction accuracy (64K gshare + BTB + RAS).
    pub branch_accuracy: f64,
}

/// Reproduce Table 1: baseline characteristics of all eleven workloads,
/// one panic-isolated simulation job per workload across `threads` pool
/// workers. A failed job yields an `Err` row; the other ten still
/// produce data.
///
/// With `oracle` set, every simulation runs the functional machine in
/// commit-time lockstep with the timing pipeline; a divergence surfaces
/// as that row's failure.
pub fn table1(limit: u64, threads: usize, oracle: bool) -> Vec<Result<Table1Row, SweepFailure>> {
    table1_journaled(limit, threads, oracle, None)
}

/// [`table1`] behind a sweep journal: completed rows replay from their
/// recorded counters, interrupted rows restart from their last
/// checkpoint, and the pool's panic retry is gated through the journal
/// (see [`crate::journal`]).
pub fn table1_journaled(
    limit: u64,
    threads: usize,
    oracle: bool,
    journal: Option<&SweepJournal>,
) -> Vec<Result<Table1Row, SweepFailure>> {
    let workloads = all();
    let row_id = |w: &Workload| format!("table1/{}", w.name);
    let results = pool::try_map_jobs_gated(
        threads,
        &workloads,
        |w| {
            poison_check(w.name);
            let p = w.program();
            let mut cfg = MachineConfig::ideal();
            cfg.oracle = oracle;
            journaled_sim(journal, &row_id(w), w.name, &p, &cfg, limit).map(|s| Table1Row {
                name: w.name,
                instructions: s.committed,
                ipc: s.ipc(),
                pct_loads: s.load_fraction(),
                pct_stores: s.stores as f64 / s.committed.max(1) as f64,
                branch_accuracy: s.branch_accuracy(),
            })
        },
        |w| journal.is_none_or(|j| j.record_retry(&row_id(w))),
    );
    results
        .into_iter()
        .zip(&workloads)
        .map(|(r, w)| match r {
            Ok(Ok(row)) => Ok(row),
            Ok(Err(e)) => Err(SweepFailure::from_sim(w.name, "ideal", &e)),
            Err(f) => Err(SweepFailure::from_panic(w.name, "ideal", f)),
        })
        .collect()
}

// ---- Fig. 2 ---------------------------------------------------------------

/// Reproduce Fig. 2 for the named benchmarks (paper: bzip and gcc),
/// 32-entry unified LSQ.
pub fn fig2(names: &[&str], limit: u64) -> Vec<(String, DisambigReport)> {
    names
        .iter()
        .map(|name| {
            let w = by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
            let p = w.program();
            let mut study = DisambigStudy::new(32);
            drive_counted(&p, limit, &mut [&mut study]);
            (name.to_string(), study.report())
        })
        .collect()
}

// ---- Fig. 4 ---------------------------------------------------------------

/// Reproduce Fig. 4 for one benchmark: the named cache family at
/// associativities 2/4/8. `big` selects the 64 KB/64 B geometry (paper:
/// mcf); otherwise 8 KB/32 B (paper: twolf).
pub fn fig4(name: &str, big: bool, limit: u64) -> Vec<TagMatchReport> {
    let w = by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let p = w.program();
    [2u32, 4, 8]
        .iter()
        .map(|&ways| {
            let cfg = if big {
                CacheConfig::new(64 * 1024, 64, ways)
            } else {
                CacheConfig::small_8k(ways)
            };
            let mut study = TagMatchStudy::new(cfg);
            drive_counted(&p, limit, &mut [&mut study]);
            study.report()
        })
        .collect()
}

// ---- Fig. 6 ---------------------------------------------------------------

/// Reproduce Fig. 6: per-benchmark misprediction-detection CDFs with a
/// 64K-entry gshare.
pub fn fig6(limit: u64) -> Vec<(&'static str, BranchReport)> {
    per_workload(pool::default_threads(), |w| {
        let p = w.program();
        let mut study = BranchStudy::table2();
        drive_counted(&p, limit, &mut [&mut study]);
        (w.name, study.report())
    })
}

// ---- Fig. 11 / Fig. 12 ------------------------------------------------------

/// Per-workload column of Fig. 11: the ideal IPC plus the cumulative
/// optimization stack.
pub struct Fig11Column {
    /// Benchmark name.
    pub name: &'static str,
    /// IPC of the unpipelined-EX ideal machine.
    pub ideal_ipc: f64,
    /// IPC at cumulative optimization levels 0..=5 (level 0 = simple
    /// pipelining).
    pub level_ipc: [f64; 6],
    /// Way-mispredict rate of the full configuration (§7.1 footnote).
    pub way_mispredict_rate: f64,
    /// Full-config statistics (for ancillary reporting).
    pub full_stats: SimStats,
}

/// The complete Fig. 11 dataset: one column set per slicing factor.
pub struct Fig11Data {
    /// Slice-by-2 columns.
    pub slice2: Vec<Fig11Column>,
    /// Slice-by-4 columns.
    pub slice4: Vec<Fig11Column>,
    /// Jobs that failed. A failed job drops the columns that needed it
    /// (both slicings if the shared ideal run failed); the remaining
    /// columns are intact.
    pub failures: Vec<SweepFailure>,
}

/// Reproduce Fig. 11: IPC stacks for slice-by-2 and slice-by-4 across all
/// workloads and cumulative optimization levels.
///
/// The sweep is flattened to one job per (workload × machine
/// configuration) — 11 × (1 ideal + 2 slicings × 6 levels) = 143
/// simulations — and fanned across `threads` pool workers; results are
/// reassembled in submission order, so the output is identical at any
/// thread count. The simulator is a pure function of (program, config,
/// budget), so the ideal run is shared between the two slicings.
pub fn fig11(limit: u64, threads: usize) -> Fig11Data {
    fig11_journaled(limit, threads, None)
}

/// [`fig11`] behind a sweep journal: each of the 143 (workload ×
/// config) jobs is a journaled row, so `--resume` skips completed rows
/// and restarts interrupted ones from their last checkpoint.
pub fn fig11_journaled(limit: u64, threads: usize, journal: Option<&SweepJournal>) -> Fig11Data {
    let workloads = all();
    let programs: Vec<Program> = pool::map_jobs(threads, &workloads, Workload::program);

    let mut jobs: Vec<(&'static str, &Program, &'static str, MachineConfig)> = Vec::new();
    for (w, p) in workloads.iter().zip(&programs) {
        jobs.push((w.name, p, "ideal", MachineConfig::ideal()));
        for by4 in [false, true] {
            for level in 0..=5 {
                let opts = Optimizations::level(level);
                let (label, cfg) = if by4 {
                    (SLICE4_LABELS[level], MachineConfig::slice4(opts))
                } else {
                    (SLICE2_LABELS[level], MachineConfig::slice2(opts))
                };
                jobs.push((w.name, p, label, cfg));
            }
        }
    }
    let row_id = |name: &str, label: &str| format!("fig11/{name}/{label}");
    let stats = pool::try_map_jobs_gated(
        threads,
        &jobs,
        |&(name, p, label, cfg)| {
            poison_check(name);
            journaled_sim(journal, &row_id(name, label), name, p, &cfg, limit)
        },
        |&(name, _, label, _)| journal.is_none_or(|j| j.record_retry(&row_id(name, label))),
    );
    let outcomes: Vec<Result<SimStats, SweepFailure>> = stats
        .into_iter()
        .zip(&jobs)
        .map(|(r, &(name, _, label, _))| match r {
            Ok(Ok(s)) => Ok(s),
            Ok(Err(e)) => Err(SweepFailure::from_sim(name, label, &e)),
            Err(f) => Err(SweepFailure::from_panic(name, label, f)),
        })
        .collect();

    let mut results = outcomes.into_iter();
    let mut data = Fig11Data {
        slice2: Vec::new(),
        slice4: Vec::new(),
        failures: Vec::new(),
    };
    for w in &workloads {
        let ideal = results.next().expect("ideal run");
        if let Err(f) = &ideal {
            data.failures.push(f.clone());
        }
        for by4 in [false, true] {
            let mut level_ipc = [0.0; 6];
            let mut full_stats = SimStats::default();
            let mut levels_ok = true;
            for slot in &mut level_ipc {
                match results.next().expect("level run") {
                    Ok(s) => {
                        *slot = s.ipc();
                        full_stats = s;
                    }
                    Err(f) => {
                        data.failures.push(f);
                        levels_ok = false;
                    }
                }
            }
            // A column needs its shared ideal run and all six levels;
            // failures drop the column but leave the rest of the sweep.
            let (Ok(ideal_stats), true) = (&ideal, levels_ok) else {
                continue;
            };
            let col = Fig11Column {
                name: w.name,
                ideal_ipc: ideal_stats.ipc(),
                level_ipc,
                way_mispredict_rate: full_stats.way_mispredict_rate(),
                full_stats,
            };
            if by4 {
                data.slice4.push(col);
            } else {
                data.slice2.push(col);
            }
        }
    }
    data
}

/// Config labels for the Fig. 11 sweep's failure reports, level 0..=5.
const SLICE2_LABELS: [&str; 6] = [
    "slice2-0", "slice2-1", "slice2-2", "slice2-3", "slice2-4", "slice2-5",
];
const SLICE4_LABELS: [&str; 6] = [
    "slice4-0", "slice4-1", "slice4-2", "slice4-3", "slice4-4", "slice4-5",
];

impl Fig11Data {
    /// Geometric-mean IPC ratio of level-5 (all techniques) to ideal, for
    /// the given slicing (the paper's "within 1%" / "18% below" summary).
    pub fn mean_full_vs_ideal(&self, by4: bool) -> f64 {
        let cols = if by4 { &self.slice4 } else { &self.slice2 };
        geomean(cols.iter().map(|c| c.level_ipc[5] / c.ideal_ipc))
    }

    /// Geometric-mean speedup of level-5 over level-0 (simple pipelining)
    /// — the paper's 16% (slice-by-2) / 44% (slice-by-4).
    pub fn mean_speedup(&self, by4: bool) -> f64 {
        let cols = if by4 { &self.slice4 } else { &self.slice2 };
        geomean(cols.iter().map(|c| c.level_ipc[5] / c.level_ipc[0]))
    }

    /// Mean speedup of level-1 only (partial bypassing) over level-0 —
    /// the "existing technique" share of Fig. 12.
    pub fn mean_bypass_speedup(&self, by4: bool) -> f64 {
        let cols = if by4 { &self.slice4 } else { &self.slice2 };
        geomean(cols.iter().map(|c| c.level_ipc[1] / c.level_ipc[0]))
    }
}

fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for v in vals {
        log_sum += v.ln();
        n += 1;
    }
    (log_sum / n.max(1) as f64).exp()
}

/// Fig. 12 rows derived from Fig. 11 data: the per-technique speedup
/// contribution over simple pipelining, per workload. Entry `[k]` is the
/// incremental contribution of cumulative level `k+1`
/// (`(ipc[k+1] - ipc[k]) / ipc[0]`); summing all five gives the total
/// speedup fraction.
pub fn fig12_from(data: &Fig11Data, by4: bool) -> Vec<(&'static str, [f64; 5], f64)> {
    let cols = if by4 { &data.slice4 } else { &data.slice2 };
    cols.iter()
        .map(|c| {
            let base = c.level_ipc[0];
            let mut contrib = [0.0; 5];
            for (k, slot) in contrib.iter_mut().enumerate() {
                *slot = (c.level_ipc[k + 1] - c.level_ipc[k]) / base;
            }
            let total = c.level_ipc[5] / base - 1.0;
            (c.name, contrib, total)
        })
        .collect()
}

// ---- compare --------------------------------------------------------------

/// Parse a machine-configuration name as accepted by the `compare`
/// binary: `ideal | simple2 | simple4 | slice2 | slice4 | ext2 | ext4 |
/// slice2-N | slice4-N` (cumulative level `N`).
pub fn parse_config(name: &str) -> Option<MachineConfig> {
    if let Some(level) = name.strip_prefix("slice2-") {
        return Some(MachineConfig::slice2(Optimizations::level(
            level.parse().ok()?,
        )));
    }
    if let Some(level) = name.strip_prefix("slice4-") {
        return Some(MachineConfig::slice4(Optimizations::level(
            level.parse().ok()?,
        )));
    }
    Some(match name {
        "ideal" => MachineConfig::ideal(),
        "simple2" => MachineConfig::simple2(),
        "simple4" => MachineConfig::simple4(),
        "slice2" => MachineConfig::slice2_full(),
        "slice4" => MachineConfig::slice4_full(),
        "ext2" => MachineConfig::slice2(Optimizations::extended()),
        "ext4" => MachineConfig::slice4(Optimizations::extended()),
        _ => return None,
    })
}

/// One per-workload outcome from [`compare`]: the A/B stat pair, or the
/// first failure that prevented completing it.
pub type ComparePair = (&'static str, Result<(SimStats, SimStats), SweepFailure>);

/// Run the whole suite under two configurations — one panic-isolated
/// job per (workload × config) across the pool — returning per-workload
/// stat pairs in registry order. A workload whose pair could not be
/// completed yields an `Err` with the first failure of the pair.
pub fn compare(
    a: &MachineConfig,
    b: &MachineConfig,
    limit: u64,
    threads: usize,
) -> Vec<ComparePair> {
    let workloads = all();
    let programs: Vec<Program> = pool::map_jobs(threads, &workloads, Workload::program);
    // Config identity is the fingerprint (the same helper the artifact
    // cache keys on): identical configs under two labels run once per
    // workload and the stat pair is the duplicated result.
    if a.fingerprint() == b.fingerprint() {
        let jobs: Vec<(&'static str, &Program)> = workloads
            .iter()
            .zip(&programs)
            .map(|(w, p)| (w.name, p))
            .collect();
        let stats = pool::try_map_jobs(threads, &jobs, |&(name, p)| {
            poison_check(name);
            try_sim(p, a, limit)
        });
        return stats
            .into_iter()
            .zip(&jobs)
            .map(|(r, &(name, _))| {
                let pair = match r {
                    Ok(Ok(s)) => Ok((s, s)),
                    Ok(Err(e)) => Err(SweepFailure::from_sim(name, "A", &e)),
                    Err(f) => Err(SweepFailure::from_panic(name, "A", f)),
                };
                (name, pair)
            })
            .collect();
    }
    let jobs: Vec<(&'static str, &Program, &'static str, MachineConfig)> = workloads
        .iter()
        .zip(&programs)
        .flat_map(|(w, p)| [(w.name, p, "A", *a), (w.name, p, "B", *b)])
        .collect();
    let stats = pool::try_map_jobs(threads, &jobs, |&(name, p, _, cfg)| {
        poison_check(name);
        try_sim(p, &cfg, limit)
    });
    let mut results = stats
        .into_iter()
        .zip(&jobs)
        .map(|(r, &(name, _, label, _))| match r {
            Ok(Ok(s)) => Ok(s),
            Ok(Err(e)) => Err(SweepFailure::from_sim(name, label, &e)),
            Err(f) => Err(SweepFailure::from_panic(name, label, f)),
        });
    workloads
        .iter()
        .map(|w| {
            let sa = results.next().expect("config A run");
            let sb = results.next().expect("config B run");
            let pair = match (sa, sb) {
                (Ok(sa), Ok(sb)) => Ok((sa, sb)),
                (Err(f), _) | (_, Err(f)) => Err(f),
            };
            (w.name, pair)
        })
        .collect()
}

// ---- RV32 sweep ------------------------------------------------------------

/// One (workload × config) result of the RV32 sweep.
#[derive(Clone, Copy, Debug)]
pub struct Rv32Row {
    /// RV32 workload name (`rv_*`).
    pub workload: &'static str,
    /// Machine-configuration label.
    pub config: &'static str,
    /// Instructions committed within the budget.
    pub committed: u64,
    /// Cycles the run took.
    pub cycles: u64,
    /// Committed instructions per cycle.
    pub ipc: f64,
}

/// The configuration ladder of the RV32 sweep: the two simple machines,
/// both slicing factors fully optimized, and the extended 4-bit config —
/// the same ladder the PISA suite headline numbers use.
pub fn rv32_configs() -> Vec<(&'static str, MachineConfig)> {
    let mut v = vec![
        ("ideal", MachineConfig::ideal()),
        ("simple2", MachineConfig::simple2()),
        ("simple4", MachineConfig::simple4()),
        ("slice2-5", MachineConfig::slice2_full()),
        ("slice4-5", MachineConfig::slice4_full()),
        ("ext4", MachineConfig::slice4(Optimizations::extended())),
    ];
    for (_, cfg) in &mut v {
        cfg.isa = popk_core::IsaKind::Rv32;
    }
    v
}

/// Run every RV32 workload through [`rv32_configs`] on the ISA-neutral
/// frontend boundary — one panic-isolated job per (workload × config),
/// results in (workload-major, config-minor) submission order. With
/// `oracle`, every run locksteps the RV32 functional machine against
/// the commit stream and a divergence becomes that row's failure.
pub fn rv32_sweep(limit: u64, threads: usize, oracle: bool) -> Vec<Result<Rv32Row, SweepFailure>> {
    let workloads = popk_rv32::workloads::all();
    let programs: Vec<popk_rv32::Rv32Program> =
        pool::map_jobs(threads, &workloads, |w| w.program());
    let cfgs = rv32_configs();
    let jobs: Vec<(
        &'static str,
        &popk_rv32::Rv32Program,
        &'static str,
        MachineConfig,
    )> = workloads
        .iter()
        .zip(&programs)
        .flat_map(|(w, p)| {
            cfgs.iter()
                .map(move |&(label, cfg)| (w.name, p, label, cfg))
        })
        .collect();
    let stats = pool::try_map_jobs(threads, &jobs, |&(name, p, _, mut cfg)| {
        poison_check(name);
        cfg.oracle = oracle;
        let s = popk_core::try_simulate_frontend(&cfg, popk_rv32::Rv32Frontend::new(p, limit))?;
        meter_record(s.committed);
        Ok::<SimStats, SimError>(s)
    });
    stats
        .into_iter()
        .zip(&jobs)
        .map(|(r, &(workload, _, config, _))| match r {
            Ok(Ok(s)) => Ok(Rv32Row {
                workload,
                config,
                committed: s.committed,
                cycles: s.cycles,
                ipc: s.ipc(),
            }),
            Ok(Err(e)) => Err(SweepFailure::from_sim(workload, config, &e)),
            Err(f) => Err(SweepFailure::from_panic(workload, config, f)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: u64 = 12_000;

    #[test]
    fn table1_rows_complete() {
        let rows = table1(QUICK, 2, false);
        assert_eq!(rows.len(), 11);
        for r in &rows {
            let r = r.as_ref().expect("healthy sweep has no failures");
            assert!(r.ipc > 0.05 && r.ipc < 4.0, "{}: ipc {}", r.name, r.ipc);
            assert!(r.pct_loads > 0.0 && r.pct_loads < 0.6);
            assert!(r.branch_accuracy > 0.5 && r.branch_accuracy <= 1.0);
        }
    }

    #[test]
    fn table1_oracle_lockstep_is_clean() {
        // Commit-time oracle lockstep across a quick run of every
        // workload: zero divergences expected.
        for r in table1(QUICK, 2, true) {
            let r = r.expect("oracle lockstep diverged");
            assert!(r.instructions > 0);
        }
    }

    #[test]
    fn fig2_reports() {
        let reports = fig2(&["bzip"], QUICK);
        assert_eq!(reports.len(), 1);
        let (_, r) = &reports[0];
        assert!(r.loads > 100);
        // Full-width comparison resolves everything.
        assert!((r.resolved_after_bits(30) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fig4_reports() {
        let reports = fig4("twolf", false, QUICK);
        assert_eq!(reports.len(), 3);
        for (r, ways) in reports.iter().zip([2u32, 4, 8]) {
            assert_eq!(r.config.ways, ways);
            assert!(r.accesses > 100);
        }
    }

    #[test]
    fn fig6_reports() {
        let reports = fig6(QUICK);
        assert_eq!(reports.len(), 11);
        let total_br: u64 = reports.iter().map(|(_, r)| r.branches).sum();
        assert!(total_br > 1000);
    }

    #[test]
    fn fig12_contributions_sum_to_total() {
        // Synthesize a Fig11Data rather than simulating: the identity is
        // algebraic.
        let col = Fig11Column {
            name: "x",
            ideal_ipc: 2.0,
            level_ipc: [1.0, 1.2, 1.25, 1.4, 1.5, 1.6],
            way_mispredict_rate: 0.0,
            full_stats: SimStats::default(),
        };
        let data = Fig11Data {
            slice2: vec![col],
            slice4: vec![],
            failures: vec![],
        };
        let rows = fig12_from(&data, false);
        let (_, contrib, total) = &rows[0];
        let sum: f64 = contrib.iter().sum();
        assert!((sum - total).abs() < 1e-12);
        assert!((total - 0.6).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert!((geomean([3.0].into_iter()) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn parse_config_names() {
        assert!(parse_config("ideal").is_some());
        assert!(parse_config("slice2-3").is_some());
        assert!(parse_config("ext4").is_some());
        assert!(parse_config("slice2-x").is_none());
        assert!(parse_config("bogus").is_none());
    }

    #[test]
    fn compare_dedups_identical_configs() {
        // Same fingerprint under two labels takes the single-run path:
        // each pair is the one result duplicated.
        let cfg = MachineConfig::ideal();
        let pairs = compare(&cfg, &cfg, QUICK, 2);
        assert_eq!(pairs.len(), 11);
        for (_, pair) in &pairs {
            let (a, b) = pair.as_ref().expect("healthy sweep");
            assert_eq!(a, b);
        }
    }

    #[test]
    fn meter_counts_runner_work() {
        let (jobs0, instrs0) = meter_snapshot();
        let rows = table1(QUICK, 1, false);
        let (jobs1, instrs1) = meter_snapshot();
        // Other tests in this process also advance the meter, so only
        // lower-bound the deltas.
        assert!(jobs1 - jobs0 >= rows.len() as u64);
        let committed: u64 = rows
            .iter()
            .map(|r| r.as_ref().expect("healthy sweep").instructions)
            .sum();
        assert!(instrs1 - instrs0 >= committed);
    }
}
