//! A hand-rolled scoped job pool for the sweep executors.
//!
//! The report binaries fan their (workload × config) simulation jobs
//! across OS threads. The workspace builds offline with no external
//! crates, so this is a minimal work-stealing-free pool on
//! [`std::thread::scope`]: one atomic cursor hands out job indices,
//! each worker writes its result into a per-job slot, and results come
//! back in **submission order** regardless of which worker ran what —
//! so sweeps are deterministic at any thread count. `threads == 1`
//! bypasses the pool entirely and runs the jobs serially in order on
//! the calling thread, reproducing single-threaded behaviour exactly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use by default: every available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// A job that panicked on every attempt (see [`try_map_jobs`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobFailure {
    /// The final panic payload, as text.
    pub message: String,
    /// Attempts made: [`JOB_ATTEMPTS`] for an ungated job (the initial
    /// run plus retries), fewer when a retry gate refused the re-run
    /// (see [`try_map_jobs_gated`]).
    pub attempts: u32,
}

/// Attempts [`try_map_jobs`] makes per job: the initial run plus one
/// retry (transient environmental failures get a second chance;
/// deterministic panics fail both attempts identically).
pub const JOB_ATTEMPTS: u32 = 2;

/// Apply `f` to every item, using up to `threads` worker threads, and
/// return the results in item (submission) order.
///
/// `threads` is clamped to `1..=items.len()`; the jobs must be
/// independent (each runs exactly once, on exactly one worker).
///
/// A panicking job propagates and aborts the whole map; use
/// [`try_map_jobs`] for panic isolation.
pub fn map_jobs<I: Sync, T: Send>(
    threads: usize,
    items: &[I],
    f: impl Fn(&I) -> T + Sync,
) -> Vec<T> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("slot lock") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("worker completed job")
        })
        .collect()
}

/// Panic-isolated variant of [`map_jobs`]: each job runs under
/// [`catch_unwind`] with one retry, so a poisoned job yields a
/// [`JobFailure`] in its slot instead of killing the sweep. Results
/// still come back in submission order.
pub fn try_map_jobs<I: Sync, T: Send>(
    threads: usize,
    items: &[I],
    f: impl Fn(&I) -> T + Sync,
) -> Vec<Result<T, JobFailure>> {
    try_map_jobs_gated(threads, items, f, |_| true)
}

/// [`try_map_jobs`] with the retry gated: before a panicked job is
/// re-attempted, `gate` runs once for it and must return `true`.
///
/// A blind retry can double-run a job whose first attempt already
/// published side effects (a half-written checkpoint, a journal line);
/// the journaled sweeps gate the retry through
/// [`crate::journal::SweepJournal::record_retry`], which wipes the
/// row's recorded state and durably journals the reset — so a retry
/// only ever executes from a recorded clean slate. A `false` gate
/// fails the job after its first attempt.
pub fn try_map_jobs_gated<I: Sync, T: Send>(
    threads: usize,
    items: &[I],
    f: impl Fn(&I) -> T + Sync,
    gate: impl Fn(&I) -> bool + Sync,
) -> Vec<Result<T, JobFailure>> {
    map_jobs(threads, items, |item| {
        let mut message = String::new();
        let mut attempts = 0u32;
        while attempts < JOB_ATTEMPTS {
            if attempts > 0 && !gate(item) {
                break;
            }
            attempts += 1;
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(v) => return Ok(v),
                Err(payload) => message = panic_message(payload.as_ref()),
            }
        }
        Err(JobFailure { message, attempts })
    })
}

/// Extract a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 16] {
            let out = map_jobs(threads, &items, |&i| i * i);
            assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_once() {
        let ran = AtomicUsize::new(0);
        let items: Vec<u32> = (0..37).collect();
        let out = map_jobs(4, &items, |&i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 37);
        assert_eq!(out.len(), 37);
    }

    #[test]
    fn empty_and_oversubscribed() {
        let none: Vec<u8> = Vec::new();
        assert!(map_jobs(8, &none, |&b| b).is_empty());
        // More threads than jobs: clamped, still correct.
        assert_eq!(map_jobs(64, &[5u8, 6], |&b| b + 1), vec![6, 7]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn try_map_isolates_panics_and_retries_once() {
        let attempts = [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ];
        let items: Vec<usize> = (0..3).collect();
        for threads in [1, 4] {
            for a in &attempts {
                a.store(0, Ordering::Relaxed);
            }
            let out = try_map_jobs(threads, &items, |&i| {
                attempts[i].fetch_add(1, Ordering::Relaxed);
                if i == 1 {
                    panic!("poisoned job {i}");
                }
                i * 10
            });
            assert_eq!(out[0], Ok(0));
            assert_eq!(out[2], Ok(20));
            let failure = out[1].as_ref().expect_err("job 1 panics");
            assert_eq!(failure.message, "poisoned job 1");
            assert_eq!(failure.attempts, JOB_ATTEMPTS);
            // The healthy jobs ran once; the poisoned one got a retry.
            assert_eq!(attempts[0].load(Ordering::Relaxed), 1, "threads {threads}");
            assert_eq!(
                attempts[1].load(Ordering::Relaxed),
                JOB_ATTEMPTS as usize,
                "threads {threads}"
            );
            assert_eq!(attempts[2].load(Ordering::Relaxed), 1, "threads {threads}");
        }
    }

    #[test]
    fn gated_retry_consults_the_gate_before_rerunning() {
        let items: Vec<usize> = (0..3).collect();
        let attempts = [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ];
        let gated = AtomicUsize::new(0);
        // Gate refuses: the panicked job fails after exactly one attempt.
        let out = try_map_jobs_gated(
            1,
            &items,
            |&i| {
                attempts[i].fetch_add(1, Ordering::Relaxed);
                if i == 1 {
                    panic!("boom");
                }
                i
            },
            |&i| {
                assert_eq!(i, 1, "gate runs only for the panicked job");
                gated.fetch_add(1, Ordering::Relaxed);
                false
            },
        );
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[2], Ok(2));
        let failure = out[1].as_ref().expect_err("job 1 panics");
        assert_eq!(failure.attempts, 1, "refused gate means no second run");
        assert_eq!(attempts[1].load(Ordering::Relaxed), 1);
        assert_eq!(gated.load(Ordering::Relaxed), 1);

        // Gate allows: behaviour matches the ungated retry.
        attempts[1].store(0, Ordering::Relaxed);
        let out = try_map_jobs_gated(
            1,
            &items,
            |&i| {
                attempts[i].fetch_add(1, Ordering::Relaxed);
                if i == 1 {
                    panic!("boom");
                }
                i
            },
            |_| true,
        );
        let failure = out[1].as_ref().expect_err("job 1 panics");
        assert_eq!(failure.attempts, JOB_ATTEMPTS);
    }
}
