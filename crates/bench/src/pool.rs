//! A hand-rolled scoped job pool for the sweep executors.
//!
//! The report binaries fan their (workload × config) simulation jobs
//! across OS threads. The workspace builds offline with no external
//! crates, so this is a minimal work-stealing-free pool on
//! [`std::thread::scope`]: one atomic cursor hands out job indices,
//! each worker writes its result into a per-job slot, and results come
//! back in **submission order** regardless of which worker ran what —
//! so sweeps are deterministic at any thread count. `threads == 1`
//! bypasses the pool entirely and runs the jobs serially in order on
//! the calling thread, reproducing single-threaded behaviour exactly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use by default: every available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Apply `f` to every item, using up to `threads` worker threads, and
/// return the results in item (submission) order.
///
/// `threads` is clamped to `1..=items.len()`; the jobs must be
/// independent (each runs exactly once, on exactly one worker).
pub fn map_jobs<I: Sync, T: Send>(
    threads: usize,
    items: &[I],
    f: impl Fn(&I) -> T + Sync,
) -> Vec<T> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().unwrap() = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker completed job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 16] {
            let out = map_jobs(threads, &items, |&i| i * i);
            assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_once() {
        let ran = AtomicUsize::new(0);
        let items: Vec<u32> = (0..37).collect();
        let out = map_jobs(4, &items, |&i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 37);
        assert_eq!(out.len(), 37);
    }

    #[test]
    fn empty_and_oversubscribed() {
        let none: Vec<u8> = Vec::new();
        assert!(map_jobs(8, &none, |&b| b).is_empty());
        // More threads than jobs: clamped, still correct.
        assert_eq!(map_jobs(64, &[5u8, 6], |&b| b + 1), vec![6, 7]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
