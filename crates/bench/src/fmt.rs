//! Minimal fixed-width table rendering for the report binaries.

#![allow(clippy::useless_vec)] // row! builds Vec rows; headers reuse it

/// Render a table: a header row plus data rows, columns padded to the
/// widest cell, separated by two spaces. Numeric-looking cells are
/// right-aligned.
pub fn render(header: &[String], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let numeric: Vec<bool> = (0..ncols)
        .map(|c| {
            rows.iter()
                .all(|r| r[c].is_empty() || r[c].parse::<f64>().is_ok() || r[c].ends_with('%'))
                && !rows.is_empty()
        })
        .collect();

    let mut out = String::new();
    let emit = |out: &mut String, row: &[String], bold_rule: bool| {
        for (c, cell) in row.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            if numeric[c] {
                out.push_str(&format!("{cell:>width$}", width = widths[c]));
            } else {
                out.push_str(&format!("{cell:<width$}", width = widths[c]));
            }
        }
        out.push('\n');
        if bold_rule {
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    };
    emit(&mut out, header, true);
    for row in rows {
        emit(&mut out, row, false);
    }
    out
}

/// Shorthand: build a `Vec<String>` row from `&str`/`String` items.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        vec![$($cell.to_string()),*]
    };
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a fraction as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &row!["name", "ipc"],
            &[row!["bzip", "1.234"], row!["li", "0.9"]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[2].contains("1.234"));
    }

    #[test]
    fn helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let _ = render(&row!["a", "b"], &[row!["only one"]]);
    }
}
