//! Report builders: the printed table plus the JSON artifact for each
//! figure, shared by the report binaries and the threads-equivalence
//! tests.
//!
//! Each builder runs its sweep through the job [`crate::pool`] (one job
//! per workload × configuration) and assembles both outputs from the
//! submission-ordered results, so for a given (budget, workload set) the
//! text and artifact are byte-identical at any thread count. The
//! volatile `host` timing block is *not* attached here — the binaries
//! add it from their [`crate::HostMeter`] just before writing, and
//! artifact diffing strips it with `Json::remove("host")`.

#![allow(clippy::useless_vec)] // row! builds Vec rows; headers reuse it

use crate::artifact::counters_json;
use crate::fmt::{f3, pct, render};
use crate::journal::SweepJournal;
use crate::runners::{self, drive_counted, sim, SweepFailure};
use crate::{pool, row, Artifact, Fig11Data};
use popk_bpred::{DirKind, FrontEndConfig};
use popk_characterize::{BranchStudy, DisambigStudy, DistanceStudy, WidthStudy};
use popk_core::{Json, MachineConfig, Optimizations};
use popk_isa::Program;
use popk_workloads::by_name;
use std::fmt::Write as _;

/// One figure's complete report: the human-readable text the binary
/// prints and the machine-readable artifact it writes under `--json`.
#[derive(Debug)]
pub struct Report {
    /// The printed report (tables and summary lines, trailing newline).
    pub text: String,
    /// The `BENCH_<figure>.json` artifact body, without the `host` block.
    pub artifact: Artifact,
    /// Sweep jobs that failed (panicked after retry, deadlocked, or
    /// diverged from the oracle). Binaries exit nonzero when this is
    /// positive; a healthy sweep reports zero and its artifact carries
    /// no `failures` key, keeping committed artifact bodies identical.
    pub failures: usize,
}

/// Append a line to the report text (infallible for `String`).
macro_rules! say {
    ($buf:expr, $($arg:tt)*) => { let _ = writeln!($buf, $($arg)*); };
}

/// Render sweep failures as the artifact's `failures` array.
fn failures_json(failures: &[SweepFailure]) -> Json {
    failures
        .iter()
        .map(|f| {
            let mut o = Json::object();
            o.set("workload", f.workload.into());
            o.set("config", f.config.as_str().into());
            o.set("message", f.message.as_str().into());
            o.set("attempts", Json::from(u64::from(f.attempts)));
            o
        })
        .collect()
}

/// Append the failure lines to a report's text, if any.
fn say_failures(text: &mut String, failures: &[SweepFailure]) {
    if failures.is_empty() {
        return;
    }
    say!(text, "\n{} job(s) FAILED:", failures.len());
    for f in failures {
        say!(
            text,
            "  {} [{}]: {} ({} attempt(s))",
            f.workload,
            f.config,
            f.message,
            f.attempts
        );
    }
}

/// Load the named workloads' programs through the pool.
fn programs_for(names: &[&str], threads: usize) -> Vec<Program> {
    pool::map_jobs(threads, names, |name| {
        by_name(name)
            .unwrap_or_else(|| panic!("unknown workload {name}"))
            .program()
    })
}

// ---- Table 1 ---------------------------------------------------------------

/// Build the Table 1 report (baseline characteristics, ideal machine).
pub fn table1_report(limit: u64, threads: usize) -> Report {
    table1_report_with(limit, threads, false)
}

/// [`table1_report`] with the commit-time oracle lockstep toggled: with
/// `oracle` set every run cross-checks the timing pipeline against the
/// functional machine at retirement, and any divergence becomes that
/// row's failure.
pub fn table1_report_with(limit: u64, threads: usize, oracle: bool) -> Report {
    table1_report_journaled(limit, threads, oracle, None)
}

/// [`table1_report_with`] behind a sweep journal (`--resume`):
/// completed rows replay from recorded counters, interrupted rows
/// restart from their last checkpoint. The report and artifact are
/// byte-identical to an uninterrupted run's.
pub fn table1_report_journaled(
    limit: u64,
    threads: usize,
    oracle: bool,
    journal: Option<&SweepJournal>,
) -> Report {
    let mut text = String::new();
    say!(
        text,
        "Table 1: benchmark characteristics (ideal machine, {limit} instructions)\n"
    );
    let results = runners::table1_journaled(limit, threads, oracle, journal);
    let rows: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    let failures: Vec<SweepFailure> = results
        .iter()
        .filter_map(|r| r.as_ref().err())
        .cloned()
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            row![
                r.name,
                r.instructions,
                f3(r.ipc),
                pct(r.pct_loads),
                pct(r.pct_stores),
                pct(r.branch_accuracy)
            ]
        })
        .collect();
    say!(
        text,
        "{}",
        render(
            &row![
                "benchmark",
                "instrs",
                "IPC",
                "% loads",
                "% stores",
                "branch acc"
            ],
            &table
        )
    );
    let mean_ipc = (rows.iter().map(|r| r.ipc.ln()).sum::<f64>() / rows.len().max(1) as f64).exp();
    say!(text, "geometric-mean IPC: {mean_ipc:.3}");
    if oracle {
        say!(
            text,
            "oracle lockstep: every retirement cross-checked, {} divergence(s)",
            failures.len()
        );
    }
    say_failures(&mut text, &failures);

    let workloads: Vec<Json> = results
        .iter()
        .map(|r| match r {
            Ok(r) => {
                let mut o = Json::object();
                o.set("name", r.name.into());
                o.set("instructions", Json::from(r.instructions));
                o.set("ipc", Json::from(r.ipc));
                o.set("pct_loads", Json::from(r.pct_loads));
                o.set("pct_stores", Json::from(r.pct_stores));
                o.set("branch_accuracy", Json::from(r.branch_accuracy));
                o
            }
            Err(f) => {
                let mut o = Json::object();
                o.set("name", f.workload.into());
                o.set("error", f.message.as_str().into());
                o
            }
        })
        .collect();
    let mut artifact = Artifact::new("table1", limit);
    artifact.set("workloads", Json::Array(workloads));
    artifact.set("geomean_ipc", Json::from(mean_ipc));
    if oracle {
        artifact.set("oracle_lockstep", Json::from(true));
    }
    if !failures.is_empty() {
        artifact.set("failures", failures_json(&failures));
    }
    Report {
        text,
        artifact,
        failures: failures.len(),
    }
}

// ---- Fig. 11 ---------------------------------------------------------------

/// One slicing factor's Fig. 11 results: per-workload IPC at every
/// cumulative level plus the ideal machine, the full-config counter
/// snapshot, and the geomean summary lines.
fn fig11_slice_json(data: &Fig11Data, by4: bool) -> Json {
    let cols = if by4 { &data.slice4 } else { &data.slice2 };
    let workloads: Vec<Json> = cols
        .iter()
        .map(|c| {
            let mut o = Json::object();
            o.set("name", c.name.into());
            o.set("ideal_ipc", Json::from(c.ideal_ipc));
            o.set(
                "level_ipc",
                c.level_ipc.iter().map(|&v| Json::from(v)).collect(),
            );
            o.set("way_mispredict_rate", Json::from(c.way_mispredict_rate));
            o.set("counters", counters_json(&c.full_stats));
            o
        })
        .collect();
    let mut s = Json::object();
    s.set("workloads", Json::Array(workloads));
    s.set(
        "geomean_full_vs_ideal",
        Json::from(data.mean_full_vs_ideal(by4)),
    );
    s.set("geomean_speedup", Json::from(data.mean_speedup(by4)));
    s
}

/// Build the Fig. 11 report (IPC stacks for both slicings) from an
/// already-run sweep.
fn fig11_report_from(data: &Fig11Data, limit: u64) -> Report {
    let mut text = String::new();
    say!(
        text,
        "Figure 10 pipeline configurations (frequency held constant):"
    );
    say!(
        text,
        "  base      : Fetch1..RF2 (12) | EX          | Mem RE CT"
    );
    say!(
        text,
        "  slice-by-2: Fetch1..RF2 (12) | EX1 EX2     | Mem RE CT"
    );
    say!(
        text,
        "  slice-by-4: Fetch1..RF2 (12) | EX1..EX4    | Mem RE CT (L1D 2 cycles)\n"
    );
    say!(
        text,
        "Figure 11: IPC stacks ({limit} instructions per run)\n"
    );

    for (by4, cols) in [(false, &data.slice2), (true, &data.slice4)] {
        let n = if by4 { 4 } else { 2 };
        say!(text, "== {n} slices ==\n");
        let header: Vec<String> = std::iter::once("benchmark".to_string())
            .chain((0..=5).map(|l| Optimizations::level_name(l).to_string()))
            .chain(std::iter::once("ideal".to_string()))
            .collect();
        let rows: Vec<Vec<String>> = cols
            .iter()
            .map(|c| {
                let mut r = vec![c.name.to_string()];
                r.extend(c.level_ipc.iter().map(|&v| f3(v)));
                r.push(f3(c.ideal_ipc));
                r
            })
            .collect();
        say!(text, "{}", render(&header, &rows));

        let vs_ideal = data.mean_full_vs_ideal(by4);
        let speedup = data.mean_speedup(by4);
        say!(
            text,
            "geomean: all-techniques IPC = {:.1}% of ideal ({}); speedup over simple pipelining = {:+.1}%\n",
            100.0 * vs_ideal,
            if by4 {
                "paper: 18% below ideal"
            } else {
                "paper: within ~1% of ideal"
            },
            100.0 * (speedup - 1.0),
        );
        let avg_way_miss: f64 =
            cols.iter().map(|c| c.way_mispredict_rate).sum::<f64>() / cols.len() as f64;
        say!(
            text,
            "avg partial-tag way-mispredict rate: {:.1}% (paper: ~{}%)\n",
            100.0 * avg_way_miss,
            if by4 { 1 } else { 2 },
        );
    }

    say_failures(&mut text, &data.failures);

    let mut artifact = Artifact::new("fig11", limit);
    artifact.set(
        "levels",
        (0..=5)
            .map(|l| Json::from(Optimizations::level_name(l)))
            .collect(),
    );
    artifact.set("slice2", fig11_slice_json(data, false));
    artifact.set("slice4", fig11_slice_json(data, true));
    if !data.failures.is_empty() {
        artifact.set("failures", failures_json(&data.failures));
    }
    Report {
        text,
        artifact,
        failures: data.failures.len(),
    }
}

/// Build the Fig. 11 report, running the sweep on `threads` workers.
pub fn fig11_report(limit: u64, threads: usize) -> Report {
    fig11_report_journaled(limit, threads, None)
}

/// [`fig11_report`] behind a sweep journal (`--resume`): each of the
/// 143 sweep jobs is a journaled row.
pub fn fig11_report_journaled(
    limit: u64,
    threads: usize,
    journal: Option<&SweepJournal>,
) -> Report {
    fig11_report_from(&runners::fig11_journaled(limit, threads, journal), limit)
}

// ---- Fig. 12 ---------------------------------------------------------------

const FIG12_TECHS: [&str; 5] = [
    "partial bypassing",
    "ooo slices",
    "early branch",
    "early l/s disambig",
    "partial tag",
];

/// Build the Fig. 12 report (per-technique speedup contributions),
/// running the Fig. 11 sweep it derives from on `threads` workers.
pub fn fig12_report(limit: u64, threads: usize) -> Report {
    fig12_report_journaled(limit, threads, None)
}

/// [`fig12_report`] behind a sweep journal (`--resume`): the Fig. 11
/// sweep it derives from runs journaled.
pub fn fig12_report_journaled(
    limit: u64,
    threads: usize,
    journal: Option<&SweepJournal>,
) -> Report {
    let mut text = String::new();
    say!(
        text,
        "Figure 12: speedup of bit-slice pipelining over simple pipelining"
    );
    say!(
        text,
        "({limit} instructions per run; columns are incremental contributions)\n"
    );

    let data = runners::fig11_journaled(limit, threads, journal);
    let mut artifact = Artifact::new("fig12", limit);
    artifact.set("techniques", FIG12_TECHS.iter().copied().collect());
    for by4 in [false, true] {
        let n = if by4 { 4 } else { 2 };
        say!(text, "== {n} slices ==\n");
        let header: Vec<String> = std::iter::once("benchmark".to_string())
            .chain(FIG12_TECHS.iter().map(|s| s.to_string()))
            .chain(std::iter::once("total".to_string()))
            .collect();
        let rows_data = runners::fig12_from(&data, by4);
        let mut rows = Vec::new();
        let mut jrows = Vec::new();
        let mut new_tech_sum = 0.0;
        for (name, contrib, total) in &rows_data {
            let mut r = vec![name.to_string()];
            r.extend(contrib.iter().map(|c| format!("{:+.1}%", 100.0 * c)));
            r.push(format!("{:+.1}%", 100.0 * total));
            rows.push(r);
            // The paper's "new techniques" are everything past bypassing.
            new_tech_sum += contrib[1..].iter().sum::<f64>();
            let mut o = Json::object();
            o.set("name", (*name).into());
            o.set("contributions", contrib.iter().copied().collect());
            o.set("total_speedup", Json::from(*total));
            jrows.push(o);
        }
        say!(text, "{}", render(&header, &rows));
        let bypass = data.mean_bypass_speedup(by4) - 1.0;
        let total = data.mean_speedup(by4) - 1.0;
        say!(
            text,
            "geomean total speedup {:+.1}% (paper: {}); bypassing alone {:+.1}%;\n\
             new techniques add ~{:+.1}% on average (paper: {}).\n",
            100.0 * total,
            if by4 { "+44%" } else { "+16%" },
            100.0 * bypass,
            100.0 * new_tech_sum / rows_data.len() as f64,
            if by4 { "+13%" } else { "+8%" },
        );
        let mut s = Json::object();
        s.set("workloads", Json::Array(jrows));
        s.set("geomean_total_speedup", Json::from(total));
        s.set("geomean_bypass_speedup", Json::from(bypass));
        artifact.set(if by4 { "slice4" } else { "slice2" }, s);
    }
    say_failures(&mut text, &data.failures);
    if !data.failures.is_empty() {
        artifact.set("failures", failures_json(&data.failures));
    }
    Report {
        text,
        artifact,
        failures: data.failures.len(),
    }
}

// ---- Ablations -------------------------------------------------------------

/// One journaled ablation section: replay the recorded `{text, value}`
/// payload when the journal already has it, otherwise run the section
/// and record it. The section's printed text and artifact value are
/// byte-identical either way.
fn journaled_section(
    journal: Option<&SweepJournal>,
    row: &str,
    key: &str,
    text: &mut String,
    artifact: &mut Artifact,
    run: impl FnOnce() -> (String, Json),
) {
    if let Some(done) = journal.and_then(|j| j.completed(row)) {
        if let (Some(t), Some(v)) = (done.get("text").and_then(Json::as_str), done.get("value")) {
            text.push_str(t);
            artifact.set(key, v.clone());
            return;
        }
    }
    if let Some(j) = journal {
        j.record_start(row);
    }
    let (t, v) = run();
    if let Some(j) = journal {
        let mut payload = Json::object();
        payload.set("text", t.as_str().into());
        payload.set("value", v.clone());
        j.record_done(row, payload);
    }
    text.push_str(&t);
    artifact.set(key, v);
}

/// Build the ablations report (sweeps A–H beyond the paper's figures),
/// fanning each section's (workload × parameter) jobs across `threads`
/// workers.
pub fn ablations_report(limit: u64, threads: usize) -> Report {
    ablations_report_journaled(limit, threads, None)
}

/// [`ablations_report`] behind a sweep journal (`--resume`), at section
/// granularity: each of the eight sections A–H is one journal row whose
/// payload carries the section's exact text and artifact value, so a
/// resumed run replays finished sections and re-runs only the
/// interrupted one.
pub fn ablations_report_journaled(
    limit: u64,
    threads: usize,
    journal: Option<&SweepJournal>,
) -> Report {
    let mut text = String::new();
    let names = ["gcc", "li", "twolf"];
    let progs = programs_for(&names, threads);
    let named_progs: Vec<(&str, &Program)> = names.iter().copied().zip(progs.iter()).collect();
    let mut artifact = Artifact::new("ablations", limit);

    // ---- A: gshare size sweep ----------------------------------------
    journaled_section(
        journal,
        "ablations/A",
        "gshare_sweep",
        &mut text,
        &mut artifact,
        || {
            let mut text = String::new();
            say!(
                text,
                "Ablation A: gshare size vs. accuracy and 8-bit detection ({limit} instrs)\n"
            );
            let jobs: Vec<(&str, &Program, u32)> = named_progs
                .iter()
                .flat_map(|&(n, p)| [10u32, 12, 14, 16].map(|bits| (n, p, bits)))
                .collect();
            let reports = pool::map_jobs(threads, &jobs, |&(_, p, bits)| {
                let mut study = BranchStudy::new(bits);
                drive_counted(p, limit, &mut [&mut study]);
                study.report()
            });
            let mut rows = Vec::new();
            let mut jrows = Vec::new();
            for (&(name, _, bits), r) in jobs.iter().zip(&reports) {
                rows.push(row![
                    name,
                    format!("{}K", (1u32 << bits) / 1024),
                    format!("{:.1}%", 100.0 * r.accuracy()),
                    format!("{:.0}%", r.percent_detected_within(8))
                ]);
                let mut o = Json::object();
                o.set("name", name.into());
                o.set("table_bits", Json::from(u64::from(bits)));
                o.set("accuracy", Json::from(r.accuracy()));
                o.set(
                    "pct_detected_within_8b",
                    Json::from(r.percent_detected_within(8)),
                );
                jrows.push(o);
            }
            say!(
                text,
                "{}",
                render(
                    &row!["benchmark", "entries", "accuracy", "detect ≤8b"],
                    &rows
                )
            );
            (text, Json::Array(jrows))
        },
    );

    // ---- B: LSQ size sweep --------------------------------------------
    journaled_section(
        journal,
        "ablations/B",
        "lsq_sweep",
        &mut text,
        &mut artifact,
        || {
            let mut text = String::new();
            say!(
                text,
                "Ablation B: LSQ window vs. loads resolved after 9 bits\n"
            );
            let jobs: Vec<(&str, &Program, usize)> = named_progs
                .iter()
                .flat_map(|&(n, p)| [8usize, 16, 32, 64].map(|lsq| (n, p, lsq)))
                .collect();
            let reports = pool::map_jobs(threads, &jobs, |&(_, p, lsq)| {
                let mut study = DisambigStudy::new(lsq);
                drive_counted(p, limit, &mut [&mut study]);
                study.report()
            });
            let mut rows = Vec::new();
            let mut jrows = Vec::new();
            for (&(name, _, lsq), r) in jobs.iter().zip(&reports) {
                rows.push(row![name, lsq, format!("{:.1}%", r.resolved_after_bits(9))]);
                let mut o = Json::object();
                o.set("name", name.into());
                o.set("lsq_entries", Json::from(lsq));
                o.set(
                    "pct_resolved_within_9b",
                    Json::from(r.resolved_after_bits(9)),
                );
                jrows.push(o);
            }
            say!(
                text,
                "{}",
                render(&row!["benchmark", "LSQ", "resolved ≤9b"], &rows)
            );
            (text, Json::Array(jrows))
        },
    );

    // ---- C: direction predictor organization ---------------------------
    journaled_section(
        journal,
        "ablations/C",
        "direction_predictor",
        &mut text,
        &mut artifact,
        || {
            let mut text = String::new();
            say!(
                text,
                "Ablation C: direction predictor organization on slice-by-2 (all techniques)\n"
            );
            let kinds = [
                ("gshare", DirKind::Gshare),
                ("bimodal", DirKind::Bimodal),
                ("local", DirKind::Local),
                ("tournament", DirKind::Tournament),
            ];
            let jobs: Vec<(&Program, DirKind)> = progs
                .iter()
                .flat_map(|p| kinds.map(|(_, kind)| (p, kind)))
                .collect();
            let ipcs = pool::map_jobs(threads, &jobs, |&(p, kind)| {
                let mut cfg = MachineConfig::slice2_full();
                cfg.frontend = FrontEndConfig {
                    dir_kind: kind,
                    ..FrontEndConfig::default()
                };
                sim(p, &cfg, limit).ipc()
            });
            let mut rows = Vec::new();
            let mut jrows = Vec::new();
            for (&name, per_kind) in names.iter().zip(ipcs.chunks_exact(kinds.len())) {
                let mut r = vec![name.to_string()];
                let mut o = Json::object();
                o.set("name", name.into());
                for ((kname, _), &ipc) in kinds.iter().zip(per_kind) {
                    r.push(f3(ipc));
                    o.set(kname, Json::from(ipc));
                }
                rows.push(r);
                jrows.push(o);
            }
            say!(
                text,
                "{}",
                render(
                    &row!["benchmark", "gshare", "bimodal", "local", "tournament"],
                    &rows
                )
            );
            (text, Json::Array(jrows))
        },
    );

    // ---- D: single-technique isolation ---------------------------------
    journaled_section(
        journal,
        "ablations/D",
        "single_technique",
        &mut text,
        &mut artifact,
        || {
            let mut text = String::new();
            say!(
                text,
                "Ablation D: each technique alone on top of partial bypassing (slice-by-4)\n"
            );
            let single = |f: fn(&mut Optimizations)| {
                let mut o = Optimizations::level(1);
                f(&mut o);
                o
            };
            let variants: [(&str, Optimizations); 5] = [
                ("bypass only", Optimizations::level(1)),
                ("+ooo slices", single(|o| o.ooo_slices = true)),
                ("+early branch", single(|o| o.early_branch = true)),
                ("+early disambig", single(|o| o.early_disambig = true)),
                ("+partial tag", single(|o| o.partial_tag = true)),
            ];
            let jobs: Vec<(&Program, Optimizations)> = progs
                .iter()
                .flat_map(|p| variants.map(|(_, opts)| (p, opts)))
                .collect();
            let ipcs = pool::map_jobs(threads, &jobs, |&(p, opts)| {
                sim(p, &MachineConfig::slice4(opts), limit).ipc()
            });
            let mut rows = Vec::new();
            let mut jrows = Vec::new();
            for (&name, per_variant) in names.iter().zip(ipcs.chunks_exact(variants.len())) {
                let mut r = vec![name.to_string()];
                let mut o = Json::object();
                o.set("name", name.into());
                for ((vname, _), &ipc) in variants.iter().zip(per_variant) {
                    r.push(f3(ipc));
                    o.set(vname, Json::from(ipc));
                }
                rows.push(r);
                jrows.push(o);
            }
            let header: Vec<String> = std::iter::once("benchmark".to_string())
                .chain(variants.iter().map(|(n, _)| n.to_string()))
                .collect();
            say!(text, "{}", render(&header, &rows));
            (text, Json::Array(jrows))
        },
    );

    // ---- E: paper-sketched extensions ----------------------------------
    journaled_section(
        journal,
        "ablations/E",
        "extensions",
        &mut text,
        &mut artifact,
        || {
            let mut text = String::new();
            say!(
                text,
                "Ablation E: paper-sketched extensions on top of all techniques (slice-by-2)\n"
            );
            let ext_names = ["gcc", "li", "twolf", "bzip", "vortex"];
            let ext_progs = programs_for(&ext_names, threads);
            let memdep = {
                let mut o = Optimizations::all();
                o.mem_dep_predict = true;
                o
            };
            let jobs: Vec<(&Program, Optimizations)> = ext_progs
                .iter()
                .flat_map(|p| {
                    [Optimizations::all(), Optimizations::extended(), memdep].map(|opts| (p, opts))
                })
                .collect();
            let stats = pool::map_jobs(threads, &jobs, |&(p, opts)| {
                sim(p, &MachineConfig::slice2(opts), limit)
            });
            let mut rows = Vec::new();
            let mut jrows = Vec::new();
            for (&name, runs) in ext_names.iter().zip(stats.chunks_exact(3)) {
                let (full, ext, md) = (&runs[0], &runs[1], &runs[2]);
                rows.push(row![
                    name,
                    f3(full.ipc()),
                    f3(ext.ipc()),
                    format!("{:+.1}%", 100.0 * (ext.ipc() / full.ipc() - 1.0)),
                    ext.spec_forwards,
                    ext.narrow_wakeups,
                    ext.sam_starts,
                    f3(md.ipc()),
                    format!("{}/{}", md.mem_dep_speculations, md.mem_dep_violations)
                ]);
                let mut o = Json::object();
                o.set("name", name.into());
                o.set("all_ipc", Json::from(full.ipc()));
                o.set("extended_ipc", Json::from(ext.ipc()));
                o.set("spec_forwards", Json::from(ext.spec_forwards));
                o.set("narrow_wakeups", Json::from(ext.narrow_wakeups));
                o.set("sam_starts", Json::from(ext.sam_starts));
                o.set("memdep_ipc", Json::from(md.ipc()));
                o.set("mem_dep_speculations", Json::from(md.mem_dep_speculations));
                o.set("mem_dep_violations", Json::from(md.mem_dep_violations));
                jrows.push(o);
            }
            say!(
                text,
                "{}",
                render(
                    &row![
                        "benchmark",
                        "all IPC",
                        "ext IPC",
                        "ext gain",
                        "spec fwd",
                        "narrow",
                        "sam",
                        "+memdep IPC",
                        "specs/viol"
                    ],
                    &rows
                )
            );
            say!(
                text,
                "`extended()` = spec-forward + narrow + sum-addressed; the memory\n\
                 dependence predictor is reported separately because its benefit is\n\
                 workload-dependent (see EXPERIMENTS.md)."
            );
            (text, Json::Array(jrows))
        },
    );

    // ---- F: wrong-path fetch modeling ----------------------------------
    journaled_section(
        journal,
        "ablations/F",
        "wrong_path",
        &mut text,
        &mut artifact,
        || {
            let mut text = String::new();
            say!(
                text,
                "\nAblation F: wrong-path fetch modeling (phantoms vs. fetch stall)\n"
            );
            let wp_names = ["go", "gcc", "parser", "twolf"];
            let wp_progs = programs_for(&wp_names, threads);
            let jobs: Vec<(&Program, bool)> = wp_progs
                .iter()
                .flat_map(|p| [(p, false), (p, true)])
                .collect();
            let stats = pool::map_jobs(threads, &jobs, |&(p, wrong_path)| {
                let mut cfg = MachineConfig::slice2_full();
                cfg.model_wrong_path = wrong_path;
                sim(p, &cfg, limit)
            });
            let mut rows = Vec::new();
            let mut jrows = Vec::new();
            for (&name, runs) in wp_names.iter().zip(stats.chunks_exact(2)) {
                let (a, b) = (&runs[0], &runs[1]);
                rows.push(row![
                    name,
                    f3(a.ipc()),
                    f3(b.ipc()),
                    format!("{:+.2}%", 100.0 * (b.ipc() / a.ipc() - 1.0))
                ]);
                let mut o = Json::object();
                o.set("name", name.into());
                o.set("stall_model_ipc", Json::from(a.ipc()));
                o.set("phantom_model_ipc", Json::from(b.ipc()));
                jrows.push(o);
            }
            say!(
                text,
                "{}",
                render(
                    &row!["benchmark", "stall-model IPC", "phantom-model IPC", "delta"],
                    &rows
                )
            );
            say!(
                text,
                "Wrong-path pollution is second-order and non-monotone — the effect\n\
                 the paper credits for bzip/gzip/li slightly exceeding the ideal\n\
                 machine."
            );
            (text, Json::Array(jrows))
        },
    );

    // ---- G: operand width distribution ---------------------------------
    let workloads = popk_workloads::all();
    journaled_section(
        journal,
        "ablations/G",
        "width_distribution",
        &mut text,
        &mut artifact,
        || {
            let mut text = String::new();
            say!(
                text,
                "\nAblation G: result significant-width distribution (the §6 premise)\n"
            );
            let width_reports = pool::map_jobs(threads, &workloads, |w| {
                let p = w.program();
                let mut study = WidthStudy::new();
                drive_counted(&p, limit, &mut [&mut study]);
                study.report()
            });
            let mut rows = Vec::new();
            let mut jrows = Vec::new();
            for (w, r) in workloads.iter().zip(&width_reports) {
                rows.push(row![
                    w.name,
                    format!("{:.0}%", 100.0 * r.fraction_within(8)),
                    format!("{:.0}%", 100.0 * r.fraction_within(16)),
                    format!("{:.0}%", 100.0 * r.fraction_within(24)),
                    format!("{:.1}", r.mean_width())
                ]);
                let mut o = Json::object();
                o.set("name", w.name.into());
                o.set("fraction_within_8b", Json::from(r.fraction_within(8)));
                o.set("fraction_within_16b", Json::from(r.fraction_within(16)));
                o.set("fraction_within_24b", Json::from(r.fraction_within(24)));
                o.set("mean_width_bits", Json::from(r.mean_width()));
                jrows.push(o);
            }
            say!(
                text,
                "{}",
                render(
                    &row!["benchmark", "≤8 bits", "≤16 bits", "≤24 bits", "mean width"],
                    &rows
                )
            );
            say!(
                text,
                "Most results are sign/zero extensions of a narrow low slice — the\n\
                 empirical basis for the narrow-operand extension (refs [3], [6])."
            );
            (text, Json::Array(jrows))
        },
    );

    // ---- H: dependence distances ---------------------------------------
    journaled_section(
        journal,
        "ablations/H",
        "dependence_distance",
        &mut text,
        &mut artifact,
        || {
            let mut text = String::new();
            say!(
                text,
                "\nAblation H: producer→consumer dependence distances (the §2 motivation)\n"
            );
            let distance_reports = pool::map_jobs(threads, &workloads, |w| {
                let p = w.program();
                let mut study = DistanceStudy::new();
                drive_counted(&p, limit, &mut [&mut study]);
                study.report()
            });
            let mut rows = Vec::new();
            let mut jrows = Vec::new();
            for (w, r) in workloads.iter().zip(&distance_reports) {
                rows.push(row![
                    w.name,
                    format!("{:.0}%", 100.0 * r.fraction_within(1)),
                    format!("{:.0}%", 100.0 * r.fraction_within(2)),
                    format!("{:.0}%", 100.0 * r.fraction_within(4)),
                    format!("{:.0}%", 100.0 * r.fraction_within(8)),
                    format!("{:.1}", r.mean_distance())
                ]);
                let mut o = Json::object();
                o.set("name", w.name.into());
                o.set("fraction_within_1", Json::from(r.fraction_within(1)));
                o.set("fraction_within_2", Json::from(r.fraction_within(2)));
                o.set("fraction_within_4", Json::from(r.fraction_within(4)));
                o.set("fraction_within_8", Json::from(r.fraction_within(8)));
                o.set("mean_distance", Json::from(r.mean_distance()));
                jrows.push(o);
            }
            say!(
                text,
                "{}",
                render(&row!["benchmark", "d=1", "≤2", "≤4", "≤8", "mean"], &rows)
            );
            say!(
                text,
                "A third to half of all source operands come from the immediately\n\
                 preceding instructions — exactly the population naive EX\n\
                 pipelining penalizes and partial bypassing rescues (Fig. 1)."
            );
            (text, Json::Array(jrows))
        },
    );

    Report {
        text,
        artifact,
        failures: 0,
    }
}

// ---- compare ---------------------------------------------------------------

/// Build the compare report (two configurations across the suite), or
/// `None` if either configuration name is unknown.
pub fn compare_report(a_name: &str, b_name: &str, limit: u64, threads: usize) -> Option<Report> {
    let a_cfg = runners::parse_config(a_name)?;
    let b_cfg = runners::parse_config(b_name)?;
    let mut text = String::new();
    say!(
        text,
        "{a_name} vs {b_name} ({limit} instructions per run)\n"
    );
    let pairs = runners::compare(&a_cfg, &b_cfg, limit, threads);

    let mut rows = Vec::new();
    let mut jrows = Vec::new();
    let mut failures: Vec<SweepFailure> = Vec::new();
    let mut log_sum = 0.0f64;
    let mut ok_count = 0u32;
    for (name, pair) in &pairs {
        let (a, b) = match pair {
            Ok(pair) => pair,
            Err(f) => {
                failures.push(f.clone());
                let mut o = Json::object();
                o.set("name", (*name).into());
                o.set("error", f.message.as_str().into());
                jrows.push(o);
                continue;
            }
        };
        let ratio = a.ipc() / b.ipc();
        log_sum += ratio.ln();
        ok_count += 1;
        rows.push(row![
            name,
            f3(a.ipc()),
            f3(b.ipc()),
            format!("{:+.1}%", 100.0 * (ratio - 1.0)),
            a.cycles,
            b.cycles
        ]);
        let mut o = Json::object();
        o.set("name", (*name).into());
        o.set("ipc_a", Json::from(a.ipc()));
        o.set("ipc_b", Json::from(b.ipc()));
        o.set("cycles_a", Json::from(a.cycles));
        o.set("cycles_b", Json::from(b.cycles));
        o.set("ipc_ratio", Json::from(ratio));
        jrows.push(o);
    }
    say!(
        text,
        "{}",
        render(
            &row![
                "benchmark",
                format!("{a_name} IPC"),
                format!("{b_name} IPC"),
                "delta",
                format!("{a_name} cyc"),
                format!("{b_name} cyc")
            ],
            &rows
        )
    );
    let geo = (log_sum / f64::from(ok_count.max(1))).exp();
    say!(
        text,
        "geomean IPC ratio {a_name}/{b_name}: {:.3} ({:+.1}%)",
        geo,
        100.0 * (geo - 1.0)
    );
    say_failures(&mut text, &failures);

    let mut artifact = Artifact::new("compare", limit);
    artifact.set("config_a", a_name.into());
    artifact.set("config_b", b_name.into());
    // Config identity as the rest of the bench layer derives it
    // (`MachineConfig::fingerprint`, shared with the artifact cache).
    artifact.set(
        "config_a_hash",
        format!("{:016x}", a_cfg.fingerprint()).into(),
    );
    artifact.set(
        "config_b_hash",
        format!("{:016x}", b_cfg.fingerprint()).into(),
    );
    artifact.set("workloads", Json::Array(jrows));
    artifact.set("geomean_ipc_ratio", Json::from(geo));
    if !failures.is_empty() {
        artifact.set("failures", failures_json(&failures));
    }
    Some(Report {
        text,
        artifact,
        failures: failures.len(),
    })
}

// ---- RV32 ------------------------------------------------------------------

/// Build the RV32 sweep report: per-workload IPC across the
/// configuration ladder of [`runners::rv32_configs`], through the same
/// timing core as the PISA suite via the ISA-neutral frontend boundary.
pub fn rv32_report(limit: u64, threads: usize) -> Report {
    rv32_report_with(limit, threads, false)
}

/// [`rv32_report`] with the commit-time oracle lockstep toggled: with
/// `oracle` set every run replays the RV32 functional machine against
/// the commit stream, and any divergence becomes that row's failure.
pub fn rv32_report_with(limit: u64, threads: usize, oracle: bool) -> Report {
    let mut text = String::new();
    say!(
        text,
        "RV32 sweep: IPC by machine configuration ({limit} instructions)\n"
    );
    let cfgs = runners::rv32_configs();
    let results = runners::rv32_sweep(limit, threads, oracle);
    let rows: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    let failures: Vec<SweepFailure> = results
        .iter()
        .filter_map(|r| r.as_ref().err())
        .cloned()
        .collect();

    // Matrix: one row per workload, one IPC column per configuration.
    let names: Vec<&'static str> = {
        let mut v: Vec<&'static str> = rows.iter().map(|r| r.workload).collect();
        v.dedup();
        v
    };
    let table: Vec<Vec<String>> = names
        .iter()
        .map(|&name| {
            let mut cells = vec![name.to_string()];
            for &(label, _) in &cfgs {
                let cell = rows
                    .iter()
                    .find(|r| r.workload == name && r.config == label)
                    .map_or_else(|| "-".into(), |r| f3(r.ipc));
                cells.push(cell);
            }
            cells
        })
        .collect();
    let mut header = vec!["workload".to_string()];
    header.extend(cfgs.iter().map(|&(label, _)| label.to_string()));
    say!(text, "{}", render(&header, &table));

    // Geomean IPC per configuration over the workloads that completed.
    let mut geo = Json::object();
    for &(label, _) in &cfgs {
        let ipcs: Vec<f64> = rows
            .iter()
            .filter(|r| r.config == label)
            .map(|r| r.ipc)
            .collect();
        if !ipcs.is_empty() {
            let g = (ipcs.iter().map(|v| v.ln()).sum::<f64>() / ipcs.len() as f64).exp();
            say!(text, "geomean IPC [{label}]: {g:.3}");
            geo.set(label, Json::from(g));
        }
    }
    if oracle {
        say!(
            text,
            "oracle lockstep: every retirement cross-checked, {} divergence(s)",
            failures.len()
        );
    }
    say_failures(&mut text, &failures);

    let workloads: Vec<Json> = names
        .iter()
        .map(|&name| {
            let mut o = Json::object();
            o.set("name", name.into());
            let configs: Vec<Json> = rows
                .iter()
                .filter(|r| r.workload == name)
                .map(|r| {
                    let mut c = Json::object();
                    c.set("config", r.config.into());
                    c.set("committed", Json::from(r.committed));
                    c.set("cycles", Json::from(r.cycles));
                    c.set("ipc", Json::from(r.ipc));
                    c
                })
                .collect();
            o.set("configs", Json::Array(configs));
            o
        })
        .collect();
    let mut artifact = Artifact::new("rv32", limit);
    artifact.set("isa", "rv32".into());
    artifact.set("workloads", Json::Array(workloads));
    artifact.set("geomean_ipc", geo);
    if oracle {
        artifact.set("oracle_lockstep", Json::from(true));
    }
    if !failures.is_empty() {
        artifact.set("failures", failures_json(&failures));
    }
    Report {
        text,
        artifact,
        failures: failures.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_rejects_unknown_configs() {
        assert!(compare_report("bogus", "ideal", 1000, 1).is_none());
        assert!(compare_report("ideal", "bogus", 1000, 1).is_none());
    }

    #[test]
    fn table1_report_shape() {
        let rep = table1_report(5_000, 2);
        assert!(rep.text.contains("geometric-mean IPC"));
        assert_eq!(
            rep.artifact.json().get("figure"),
            Some(&Json::from("table1"))
        );
        let Some(Json::Array(ws)) = rep.artifact.json().get("workloads") else {
            panic!("workloads array missing");
        };
        assert_eq!(ws.len(), 11);
        // The host block is the binaries' job, not the builder's.
        assert!(rep.artifact.json().get("host").is_none());
    }
}
