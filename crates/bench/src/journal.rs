//! The write-ahead sweep journal: crash-safe `--resume` for the report
//! binaries.
//!
//! A sweep (Table 1, Fig. 11/12, the ablations) is a list of *rows* —
//! one (workload × config) simulation or one ablation section. The
//! journal records each row's lifecycle as append-only lines in
//! `<dir>/<figure>.journal`:
//!
//! - `open`  — the header: journal schema version, figure, budget, and
//!   a free-form `params` string folding in anything else that changes
//!   results (e.g. the oracle toggle). A journal whose header does not
//!   match the current invocation is discarded, never resumed.
//! - `start` — a row's simulation began. A `start` with no later `done`
//!   marks an *interrupted* row: `--resume` re-runs it, resuming from
//!   its last on-disk checkpoint when one is present and valid.
//! - `retry` — a row's first attempt panicked and its recorded state
//!   (the row checkpoint) was wiped; the retry starts clean. The pool
//!   only re-attempts a job once this line is durably appended.
//! - `done`  — the row completed; the line embeds the row's payload
//!   (e.g. the exact [`SimStats`](popk_core::SimStats) counters), so a
//!   resumed sweep replays it without re-simulating.
//!
//! Every line is *individually* sealed with the same FNV integrity
//! checksum idiom as the artifact cache, serialized compactly on one
//! line — so a torn tail (crash mid-append) is detected and replay
//! simply stops at the first unverifiable line, exactly the prefix that
//! was durably recorded. Alongside the journal lives a checkpoint
//! directory `<dir>/<figure>.ckpt/` holding one
//! [`popk_core::Checkpoint`] file per in-flight row.
//!
//! The journal is *advisory*: if the directory is unwritable the sweep
//! still runs, un-journaled, with a warning (`degraded` mode) — crash
//! safety must never be the reason a run fails.

use popk_core::hash::fnv1a_64;
use popk_core::{Checkpoint, Json};
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Version stamp of the journal line shapes. Bump on any incompatible
/// change: older journals are discarded (fresh start), never misread.
pub const JOURNAL_VERSION: u64 = 1;

/// Serialize `j` compactly with its FNV integrity checksum appended —
/// the line-oriented sibling of [`crate::cache::seal_body`]: the
/// checksum covers the compact serialization without the `integrity`
/// field, so each journal line verifies independently.
pub fn seal_line(mut j: Json) -> String {
    j.remove("integrity");
    let unsealed = j.to_string();
    j.set(
        "integrity",
        format!("{:016x}", fnv1a_64(unsealed.as_bytes())).into(),
    );
    j.to_string()
}

/// Parse and verify one sealed journal line. `None` on any defect —
/// invalid JSON, missing or mismatched checksum — which replay treats
/// as the end of the durable prefix.
pub fn verify_line(line: &str) -> Option<Json> {
    let mut parsed = Json::parse(line.trim()).ok()?;
    let stated = parsed.remove("integrity")?.as_str()?.to_string();
    let actual = format!("{:016x}", fnv1a_64(parsed.to_string().as_bytes()));
    (stated == actual).then_some(parsed)
}

/// One sweep's journal: the replayed state of a previous interrupted
/// run plus the append handle recording this run's progress.
///
/// Shared by reference across pool workers (appends serialize under an
/// internal lock); the replayed `done`/`started` maps are immutable
/// after [`open`](SweepJournal::open).
pub struct SweepJournal {
    path: PathBuf,
    ckpt_dir: PathBuf,
    file: Mutex<Option<File>>,
    done: HashMap<String, Json>,
    interrupted: HashSet<String>,
}

impl SweepJournal {
    /// Open (or create) the journal for `figure` under `dir`.
    ///
    /// With `resume` set, an existing journal whose header matches
    /// (`figure`, `limit`, `params`) is replayed: completed rows become
    /// [`completed`](SweepJournal::completed) payloads and rows started
    /// but never finished become [`interrupted`](SweepJournal::interrupted).
    /// The journal is then rewritten compacted (header + the replayed
    /// `done` lines), which also truncates any torn tail. Without
    /// `resume` — or on any header mismatch — previous state is
    /// discarded, including stale row checkpoints.
    pub fn open(dir: &Path, figure: &str, limit: u64, params: &str, resume: bool) -> SweepJournal {
        let path = dir.join(format!("{figure}.journal"));
        let ckpt_dir = dir.join(format!("{figure}.ckpt"));
        let mut done = HashMap::new();
        let mut interrupted = HashSet::new();

        if resume {
            if let Ok(text) = std::fs::read_to_string(&path) {
                let mut lines = text.lines();
                let header_ok = lines.next().and_then(verify_line).is_some_and(|h| {
                    h.get("op").and_then(Json::as_str) == Some("open")
                        && h.get("journal_version").and_then(Json::as_u64) == Some(JOURNAL_VERSION)
                        && h.get("figure").and_then(Json::as_str) == Some(figure)
                        && h.get("limit").and_then(Json::as_u64) == Some(limit)
                        && h.get("params").and_then(Json::as_str) == Some(params)
                });
                if header_ok {
                    for line in lines {
                        // The first unverifiable line ends the durable
                        // prefix (torn tail from a crash mid-append).
                        let Some(entry) = verify_line(line) else {
                            break;
                        };
                        let row = entry
                            .get("row")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string();
                        match entry.get("op").and_then(Json::as_str) {
                            Some("start") | Some("retry") => {
                                interrupted.insert(row);
                            }
                            Some("done") => {
                                interrupted.remove(&row);
                                if let Some(payload) = entry.get("payload") {
                                    done.insert(row, payload.clone());
                                }
                            }
                            _ => {}
                        }
                    }
                } else {
                    let _ = std::fs::remove_dir_all(&ckpt_dir);
                }
            }
        } else {
            let _ = std::fs::remove_dir_all(&ckpt_dir);
        }

        // Rewrite compacted: header plus the surviving done rows. An
        // unwritable directory degrades to an un-journaled sweep.
        let file = std::fs::create_dir_all(dir)
            .and_then(|()| File::create(&path))
            .map_err(|e| {
                eprintln!(
                    "warning: sweep journal unavailable ({}): {e}; running without crash safety",
                    path.display()
                );
            })
            .ok();
        let journal = SweepJournal {
            path,
            ckpt_dir,
            file: Mutex::new(file),
            done,
            interrupted,
        };
        let mut header = Json::object();
        header.set("op", "open".into());
        header.set("journal_version", Json::from(JOURNAL_VERSION));
        header.set("figure", figure.into());
        header.set("limit", Json::from(limit));
        header.set("params", params.into());
        journal.append(header);
        for (row, payload) in &journal.done {
            journal.append(done_line(row, payload.clone()));
        }
        journal
    }

    /// Append one sealed line; on failure, degrade (warn once, journal
    /// off) rather than fail the sweep.
    fn append(&self, j: Json) {
        let mut guard = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(file) = guard.as_mut() else { return };
        let mut line = seal_line(j);
        line.push('\n');
        if file
            .write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .is_err()
        {
            eprintln!(
                "warning: sweep journal write failed ({}); continuing without crash safety",
                self.path.display()
            );
            *guard = None;
        }
    }

    /// Whether journaling is off (directory unwritable or a failed
    /// append). A degraded sweep still runs; it just cannot resume.
    pub fn degraded(&self) -> bool {
        self.file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_none()
    }

    /// The replayed payload of a completed row, if this journal was
    /// resumed and the row finished in a previous run.
    pub fn completed(&self, row: &str) -> Option<&Json> {
        self.done.get(row)
    }

    /// Whether a previous run started (but never finished) this row.
    pub fn interrupted(&self, row: &str) -> bool {
        self.interrupted.contains(row)
    }

    /// Record that `row`'s simulation is beginning.
    pub fn record_start(&self, row: &str) {
        let mut j = Json::object();
        j.set("op", "start".into());
        j.set("row", row.into());
        self.append(j);
    }

    /// Record that `row` is being re-attempted after a panic: wipe its
    /// checkpoint (the panicked attempt may have left one mid-write
    /// semantics cannot vouch for) and durably journal the reset.
    /// Returns whether the clean state was recorded — the pool's gated
    /// retry only re-runs the job if it was, so a retry never executes
    /// from unrecorded state.
    pub fn record_retry(&self, row: &str) -> bool {
        let _ = std::fs::remove_file(self.checkpoint_path(row));
        let mut j = Json::object();
        j.set("op", "retry".into());
        j.set("row", row.into());
        self.append(j);
        !self.degraded()
    }

    /// Record that `row` completed with `payload`, and drop its
    /// now-obsolete checkpoint.
    pub fn record_done(&self, row: &str, payload: Json) {
        self.append(done_line(row, payload));
        let _ = std::fs::remove_file(self.checkpoint_path(row));
    }

    /// Where `row`'s periodic checkpoint lives: a sanitized, collision-
    /// hashed file name under the sweep's checkpoint directory.
    pub fn checkpoint_path(&self, row: &str) -> PathBuf {
        let slug: String = row
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .take(48)
            .collect();
        self.ckpt_dir
            .join(format!("{slug}-{:08x}.ckpt.json", fnv1a_64(row.as_bytes())))
    }

    /// Load the checkpoint of an interrupted row. `None` when the row
    /// was not interrupted, has no checkpoint, or the file is defective
    /// (truncated, corrupted, stale) — the caller then restarts the row
    /// from instruction zero, which is always sound.
    pub fn load_checkpoint(&self, row: &str) -> Option<Checkpoint> {
        if !self.interrupted(row) {
            return None;
        }
        match Checkpoint::load(&self.checkpoint_path(row)) {
            Ok(c) => Some(c),
            Err(popk_core::CheckpointError::Io(_)) => None, // never written
            Err(e) => {
                eprintln!("warning: checkpoint for row `{row}` unusable ({e}); restarting row");
                None
            }
        }
    }

    /// The sweep completed and its artifact is written: remove the
    /// journal and every remaining checkpoint. Failure to clean up is
    /// harmless (a later non-resume open truncates anyway).
    pub fn finish(&self) {
        {
            let mut guard = self
                .file
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *guard = None;
        }
        let _ = std::fs::remove_file(&self.path);
        let _ = std::fs::remove_dir_all(&self.ckpt_dir);
    }
}

fn done_line(row: &str, payload: Json) -> Json {
    let mut j = Json::object();
    j.set("op", "done".into());
    j.set("row", row.into());
    j.set("payload", payload);
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("popk-journal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn payload(n: u64) -> Json {
        let mut j = Json::object();
        j.set("n", Json::from(n));
        j
    }

    #[test]
    fn line_seal_roundtrip_and_tamper_detection() {
        let line = seal_line(payload(7));
        assert!(!line.contains('\n'));
        let back = verify_line(&line).expect("verifies");
        assert_eq!(back.get("n").and_then(Json::as_u64), Some(7));
        // Any byte flip that stays valid JSON fails the checksum.
        let tampered = line.replacen("7", "8", 1);
        assert_eq!(verify_line(&tampered), None);
        // Truncation fails to parse.
        assert_eq!(verify_line(&line[..line.len() - 3]), None);
    }

    #[test]
    fn resume_replays_done_and_flags_interrupted() {
        let dir = temp_dir("resume");
        {
            let j = SweepJournal::open(&dir, "t", 1000, "", false);
            assert!(!j.degraded());
            j.record_start("a");
            j.record_done("a", payload(1));
            j.record_start("b"); // interrupted: no done line
        }
        let j = SweepJournal::open(&dir, "t", 1000, "", true);
        assert_eq!(
            j.completed("a")
                .and_then(|p| p.get("n"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert!(j.completed("b").is_none());
        assert!(j.interrupted("b"));
        assert!(!j.interrupted("a"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_stops_replay_at_durable_prefix() {
        let dir = temp_dir("torn");
        {
            let j = SweepJournal::open(&dir, "t", 1000, "", false);
            j.record_done("a", payload(1));
            j.record_done("b", payload(2));
        }
        // Simulate a crash mid-append: chop the last line in half.
        let path = dir.join("t.journal");
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.trim_end().rfind('\n').unwrap() + 10;
        std::fs::write(&path, &text[..keep]).unwrap();

        let j = SweepJournal::open(&dir, "t", 1000, "", true);
        assert!(j.completed("a").is_some(), "durable prefix survives");
        assert!(j.completed("b").is_none(), "torn line is not trusted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_mismatch_discards_previous_journal() {
        let dir = temp_dir("header");
        {
            let j = SweepJournal::open(&dir, "t", 1000, "oracle=false", false);
            j.record_done("a", payload(1));
        }
        // Different budget → fresh journal even under --resume.
        let j = SweepJournal::open(&dir, "t", 2000, "oracle=false", true);
        assert!(j.completed("a").is_none());
        // Different params string → likewise.
        {
            let j = SweepJournal::open(&dir, "t", 1000, "oracle=false", false);
            j.record_done("a", payload(1));
        }
        let j = SweepJournal::open(&dir, "t", 1000, "oracle=true", true);
        assert!(j.completed("a").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_resume_open_discards_everything() {
        let dir = temp_dir("fresh");
        {
            let j = SweepJournal::open(&dir, "t", 1000, "", false);
            j.record_done("a", payload(1));
            j.record_start("b");
        }
        let j = SweepJournal::open(&dir, "t", 1000, "", false);
        assert!(j.completed("a").is_none());
        assert!(!j.interrupted("b"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_wipes_checkpoint_and_reports_durability() {
        let dir = temp_dir("retry");
        let j = SweepJournal::open(&dir, "t", 1000, "", false);
        let ckpt = j.checkpoint_path("row/with/slashes");
        std::fs::create_dir_all(ckpt.parent().unwrap()).unwrap();
        std::fs::write(&ckpt, "stale").unwrap();
        assert!(j.record_retry("row/with/slashes"));
        assert!(!ckpt.exists(), "retry must wipe the row checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_removes_journal_and_checkpoints() {
        let dir = temp_dir("finish");
        let j = SweepJournal::open(&dir, "t", 1000, "", false);
        j.record_done("a", payload(1));
        let ckpt = j.checkpoint_path("b");
        std::fs::create_dir_all(ckpt.parent().unwrap()).unwrap();
        std::fs::write(&ckpt, "x").unwrap();
        j.finish();
        assert!(!dir.join("t.journal").exists());
        assert!(!ckpt.parent().unwrap().exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_dir_degrades_instead_of_failing() {
        // A file where the journal directory should be makes every
        // filesystem operation fail; the journal must degrade.
        let dir = temp_dir("degraded");
        std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
        std::fs::write(&dir, "not a directory").unwrap();
        let j = SweepJournal::open(&dir, "t", 1000, "", false);
        assert!(j.degraded());
        j.record_start("a");
        j.record_done("a", payload(1));
        assert!(
            !j.record_retry("a"),
            "degraded journal cannot vouch for a reset"
        );
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn checkpoint_paths_distinct_for_colliding_slugs() {
        let dir = temp_dir("paths");
        let j = SweepJournal::open(&dir, "t", 1000, "", false);
        // Same sanitized prefix, different rows → hash suffix disambiguates.
        assert_ne!(j.checkpoint_path("a/b"), j.checkpoint_path("a:b"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
