//! Criterion microbenchmarks of the substrates: emulator throughput,
//! cache probes (full vs. partial tag), branch predictors, and the
//! bit-slice ALU — the inner loops every experiment rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use popk_bpred::{Bimodal, DirectionPredictor, Gshare};
use popk_cache::{Cache, CacheConfig};
use popk_emu::Machine;
use popk_slice::{AluSliceOp, SliceAlu, SliceWidth};
use popk_workloads::by_name;
use std::hint::black_box;

fn bench_emulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulator");
    group.throughput(Throughput::Elements(50_000));
    for name in ["ijpeg", "mcf"] {
        let program = by_name(name).unwrap().program();
        group.bench_with_input(BenchmarkId::new("trace_50k", name), &program, |b, p| {
            b.iter(|| {
                let mut m = Machine::new(p);
                let mut n = 0u64;
                for rec in m.trace(50_000) {
                    black_box(rec.unwrap());
                    n += 1;
                }
                n
            })
        });
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    let cfg = CacheConfig::l1d_table2();
    let addrs: Vec<u32> = (0..4096u32).map(|i| 0x1000_0000 + i * 68 * 4).collect();
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_function("access_stream", |b| {
        let mut cache = Cache::new(cfg);
        b.iter(|| {
            let mut hits = 0u32;
            for &a in &addrs {
                hits += cache.access(a).hit as u32;
            }
            black_box(hits)
        })
    });
    group.bench_function("partial_probe_2bits", |b| {
        let mut cache = Cache::new(cfg);
        for &a in &addrs {
            cache.access(a);
        }
        b.iter(|| {
            let mut n = 0u32;
            for &a in &addrs {
                n += matches!(
                    cache.partial_probe(a, 2),
                    popk_cache::PartialOutcome::ZeroMatch
                ) as u32;
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("bpred");
    let pcs: Vec<u32> = (0..4096u32).map(|i| 0x0040_0000 + (i % 257) * 4).collect();
    group.throughput(Throughput::Elements(pcs.len() as u64));
    group.bench_function("gshare_64k", |b| {
        let mut g = Gshare::new(16);
        b.iter(|| {
            let mut taken = 0u32;
            for (i, &pc) in pcs.iter().enumerate() {
                taken += g.predict(pc) as u32;
                g.update(pc, i % 3 != 0);
            }
            black_box(taken)
        })
    });
    group.bench_function("bimodal_2k", |b| {
        let mut g = Bimodal::new(11);
        b.iter(|| {
            let mut taken = 0u32;
            for (i, &pc) in pcs.iter().enumerate() {
                taken += g.predict(pc) as u32;
                g.update(pc, i % 3 != 0);
            }
            black_box(taken)
        })
    });
    group.finish();
}

fn bench_slice_alu(c: &mut Criterion) {
    let mut group = c.benchmark_group("slice_alu");
    group.throughput(Throughput::Elements(4096));
    for width in [SliceWidth::W32, SliceWidth::W16, SliceWidth::W8] {
        group.bench_with_input(
            BenchmarkId::new("add_sliced", format!("{width}")),
            &width,
            |b, &w| {
                let alu = SliceAlu::new(w);
                b.iter(|| {
                    let mut acc = 0u32;
                    for i in 0..4096u32 {
                        acc ^= alu.eval(AluSliceOp::Add, i.wrapping_mul(2654435761), acc).join();
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_emulator,
    bench_cache,
    bench_predictors,
    bench_slice_alu
);
criterion_main!(benches);
