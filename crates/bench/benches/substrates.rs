//! Microbenchmarks of the substrates: emulator throughput, cache probes
//! (full vs. partial tag), branch predictors, and the bit-slice ALU — the
//! inner loops every experiment rests on.
//!
//! Run with `cargo bench -p popk-bench --bench substrates`.

use popk_bench::timing::bench;
use popk_bpred::{Bimodal, DirectionPredictor, Gshare};
use popk_cache::{Cache, CacheConfig};
use popk_emu::Machine;
use popk_slice::{AluSliceOp, SliceAlu, SliceBatch, SliceWidth};
use popk_workloads::by_name;

fn bench_emulator() {
    for name in ["ijpeg", "mcf"] {
        let program = by_name(name).unwrap().program();
        let s = bench(&format!("emulator/trace_50k/{name}"), 5, || {
            let mut m = Machine::new(&program);
            let mut n = 0u64;
            for rec in m.trace(50_000) {
                std::hint::black_box(rec.unwrap());
                n += 1;
            }
            n
        });
        println!("  -> {:.1} M insns/s", s.elems_per_sec(50_000) / 1e6);
    }
}

fn bench_cache() {
    let cfg = CacheConfig::l1d_table2();
    let addrs: Vec<u32> = (0..4096u32).map(|i| 0x1000_0000 + i * 68 * 4).collect();
    let mut cache = Cache::new(cfg);
    let s = bench("cache/access_stream", 20, || {
        let mut hits = 0u32;
        for &a in &addrs {
            hits += cache.access(a).hit as u32;
        }
        hits
    });
    println!(
        "  -> {:.1} M accesses/s",
        s.elems_per_sec(addrs.len() as u64) / 1e6
    );

    let mut warm = Cache::new(cfg);
    for &a in &addrs {
        warm.access(a);
    }
    let s = bench("cache/partial_probe_2bits", 20, || {
        let mut n = 0u32;
        for &a in &addrs {
            n += matches!(
                warm.partial_probe(a, 2),
                popk_cache::PartialOutcome::ZeroMatch
            ) as u32;
        }
        n
    });
    println!(
        "  -> {:.1} M probes/s",
        s.elems_per_sec(addrs.len() as u64) / 1e6
    );
}

fn bench_predictors() {
    let pcs: Vec<u32> = (0..4096u32).map(|i| 0x0040_0000 + (i % 257) * 4).collect();
    let mut gshare = Gshare::new(16);
    bench("bpred/gshare_64k", 20, || {
        let mut taken = 0u32;
        for (i, &pc) in pcs.iter().enumerate() {
            taken += gshare.predict(pc) as u32;
            gshare.update(pc, i % 3 != 0);
        }
        taken
    });
    let mut bimodal = Bimodal::new(11);
    bench("bpred/bimodal_2k", 20, || {
        let mut taken = 0u32;
        for (i, &pc) in pcs.iter().enumerate() {
            taken += bimodal.predict(pc) as u32;
            bimodal.update(pc, i % 3 != 0);
        }
        taken
    });
}

fn bench_slice_alu() {
    for width in [SliceWidth::W32, SliceWidth::W16, SliceWidth::W8] {
        let alu = SliceAlu::new(width);
        bench(&format!("slice_alu/add_sliced/{width}"), 20, || {
            let mut acc = 0u32;
            for i in 0..4096u32 {
                acc ^= alu
                    .eval(AluSliceOp::Add, i.wrapping_mul(2654435761), acc)
                    .join();
            }
            acc
        });
    }
}

/// Batched kernels vs the per-entry ALU at several batch sizes: the
/// same mixed-op lane pool evaluated (a) one `SliceAlu::eval` at a
/// time, (b) through the flat scalar `SliceBatch` kernel, and (c) —
/// when built with `--features simd` on nightly — through the explicit
/// `std::simd` kernel.
fn bench_slice_batch() {
    const OPS: [AluSliceOp; 8] = [
        AluSliceOp::Add,
        AluSliceOp::Sub,
        AluSliceOp::And,
        AluSliceOp::Or,
        AluSliceOp::Xor,
        AluSliceOp::Add,
        AluSliceOp::Slt,
        AluSliceOp::Sltu,
    ];
    let width = SliceWidth::W8;
    let lanes: Vec<(AluSliceOp, u32, u32)> = (0..4096u32)
        .map(|i| {
            let a = i.wrapping_mul(2654435761);
            let b = a.rotate_left(13) ^ 0x5bd1_e995;
            (OPS[(i % 8) as usize], a, b)
        })
        .collect();
    let total = lanes.len() as u64;

    for n in [1usize, 4, 16, 64] {
        let alu = SliceAlu::new(width);
        let s = bench(&format!("slice_batch/scalar_per_entry/n{n}"), 20, || {
            let mut acc = 0u32;
            for chunk in lanes.chunks(n) {
                for &(op, a, b) in chunk {
                    acc ^= alu.eval(op, a, b).join();
                }
            }
            acc
        });
        println!("  -> {:.1} M lanes/s", s.elems_per_sec(total) / 1e6);

        let mut batch = SliceBatch::new(width);
        let mut out = Vec::new();
        let s = bench(&format!("slice_batch/batch_kernel/n{n}"), 20, || {
            let mut acc = 0u32;
            for chunk in lanes.chunks(n) {
                batch.clear();
                for &(op, a, b) in chunk {
                    batch.push(op, a, b);
                }
                batch.eval_into_scalar(&mut out);
                for &v in &out {
                    acc ^= v;
                }
            }
            acc
        });
        println!("  -> {:.1} M lanes/s", s.elems_per_sec(total) / 1e6);

        #[cfg(feature = "simd")]
        {
            let s = bench(&format!("slice_batch/simd_kernel/n{n}"), 20, || {
                let mut acc = 0u32;
                for chunk in lanes.chunks(n) {
                    batch.clear();
                    for &(op, a, b) in chunk {
                        batch.push(op, a, b);
                    }
                    batch.eval_into_simd(&mut out);
                    for &v in &out {
                        acc ^= v;
                    }
                }
                acc
            });
            println!("  -> {:.1} M lanes/s", s.elems_per_sec(total) / 1e6);
        }
    }
}

fn main() {
    bench_emulator();
    bench_cache();
    bench_predictors();
    bench_slice_alu();
    bench_slice_batch();
}
