//! Benchmarks of the timing simulator itself: cycles-per-second
//! throughput for each pipeline configuration, and the relative cost of
//! the characterization passes. These guard the harness against
//! performance regressions (a full Fig. 11 regeneration is 132
//! simulations).
//!
//! Run with `cargo bench -p popk-bench --bench simulator`.

use popk_bench::timing::bench;
use popk_characterize::{drive, BranchStudy, DisambigStudy, TagMatchStudy};
use popk_core::{simulate, MachineConfig};
use popk_workloads::by_name;

const LIMIT: u64 = 20_000;

fn bench_configs() {
    let program = by_name("gcc").unwrap().program();
    for (label, cfg) in [
        ("ideal", MachineConfig::ideal()),
        ("simple2", MachineConfig::simple2()),
        ("slice2_full", MachineConfig::slice2_full()),
        ("simple4", MachineConfig::simple4()),
        ("slice4_full", MachineConfig::slice4_full()),
    ] {
        bench(&format!("simulate_gcc_20k/{label}"), 10, || {
            simulate(&program, &cfg, LIMIT)
        });
    }
}

fn bench_workload_diversity() {
    for name in ["mcf", "li", "ijpeg"] {
        let program = by_name(name).unwrap().program();
        bench(&format!("simulate_slice2_full_20k/{name}"), 10, || {
            simulate(&program, &MachineConfig::slice2_full(), LIMIT)
        });
    }
}

fn bench_characterization() {
    let program = by_name("twolf").unwrap().program();
    bench("characterize_twolf_20k/disambig", 10, || {
        let mut s = DisambigStudy::new(32);
        drive(&program, LIMIT, &mut [&mut s]).unwrap();
        s.report().loads
    });
    bench("characterize_twolf_20k/tagmatch", 10, || {
        let mut s = TagMatchStudy::new(popk_cache::CacheConfig::l1d_table2());
        drive(&program, LIMIT, &mut [&mut s]).unwrap();
        s.report().accesses
    });
    bench("characterize_twolf_20k/branch", 10, || {
        let mut s = BranchStudy::table2();
        drive(&program, LIMIT, &mut [&mut s]).unwrap();
        s.report().branches
    });
}

fn main() {
    bench_configs();
    bench_workload_diversity();
    bench_characterization();
}
