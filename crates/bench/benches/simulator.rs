//! Criterion benchmarks of the timing simulator itself: cycles-per-second
//! throughput for each pipeline configuration, and the relative cost of
//! the characterization passes. These guard the harness against
//! performance regressions (a full Fig. 11 regeneration is 132
//! simulations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popk_characterize::{drive, BranchStudy, DisambigStudy, TagMatchStudy};
use popk_core::{simulate, MachineConfig};
use popk_workloads::by_name;
use std::hint::black_box;

const LIMIT: u64 = 20_000;

fn bench_configs(c: &mut Criterion) {
    let program = by_name("gcc").unwrap().program();
    let mut group = c.benchmark_group("simulate_gcc_20k");
    group.sample_size(10);
    for (label, cfg) in [
        ("ideal", MachineConfig::ideal()),
        ("simple2", MachineConfig::simple2()),
        ("slice2_full", MachineConfig::slice2_full()),
        ("simple4", MachineConfig::simple4()),
        ("slice4_full", MachineConfig::slice4_full()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate(&program, cfg, LIMIT)))
        });
    }
    group.finish();
}

fn bench_workload_diversity(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_slice2_full_20k");
    group.sample_size(10);
    for name in ["mcf", "li", "ijpeg"] {
        let program = by_name(name).unwrap().program();
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| black_box(simulate(p, &MachineConfig::slice2_full(), LIMIT)))
        });
    }
    group.finish();
}

fn bench_characterization(c: &mut Criterion) {
    let program = by_name("twolf").unwrap().program();
    let mut group = c.benchmark_group("characterize_twolf_20k");
    group.sample_size(10);
    group.bench_function("disambig", |b| {
        b.iter(|| {
            let mut s = DisambigStudy::new(32);
            drive(&program, LIMIT, &mut [&mut s]).unwrap();
            black_box(s.report().loads)
        })
    });
    group.bench_function("tagmatch", |b| {
        b.iter(|| {
            let mut s = TagMatchStudy::new(popk_cache::CacheConfig::l1d_table2());
            drive(&program, LIMIT, &mut [&mut s]).unwrap();
            black_box(s.report().accesses)
        })
    });
    group.bench_function("branch", |b| {
        b.iter(|| {
            let mut s = BranchStudy::table2();
            drive(&program, LIMIT, &mut [&mut s]).unwrap();
            black_box(s.report().branches)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_configs,
    bench_workload_diversity,
    bench_characterization
);
criterion_main!(benches);
