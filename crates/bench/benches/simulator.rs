//! Benchmarks of the timing simulator itself: cycles-per-second
//! throughput for each pipeline configuration, and the relative cost of
//! the characterization passes. These guard the harness against
//! performance regressions (a full Fig. 11 regeneration is 132
//! simulations).
//!
//! Run with `cargo bench -p popk-bench --bench simulator`. An optional
//! instruction budget overrides the 20 K default (e.g.
//! `cargo bench -p popk-bench --bench simulator -- 200000`).

use popk_bench::timing::bench;
use popk_characterize::{drive, BranchStudy, DisambigStudy, TagMatchStudy};
use popk_core::{simulate, MachineConfig};
use popk_workloads::by_name;

const DEFAULT_LIMIT: u64 = 20_000;

/// Render an instruction budget compactly for bench labels (20k, 200k).
fn human_limit(limit: u64) -> String {
    if limit.is_multiple_of(1000) {
        format!("{}k", limit / 1000)
    } else {
        limit.to_string()
    }
}

/// Time one simulation case and report simulated-instruction throughput
/// alongside the wall-clock sample. Returns the Minsts/s figure so the
/// driver can aggregate a geomean.
fn bench_sim(label: &str, limit: u64, f: impl FnMut() -> popk_core::SimStats) -> f64 {
    let sample = bench(label, 10, f);
    let minsts = sample.elems_per_sec(limit) / 1e6;
    println!(
        "{:<44} {:>10.2} Minsts/s",
        format!("{label} (throughput)"),
        minsts
    );
    minsts
}

fn bench_configs(limit: u64, geo: &mut Vec<f64>) {
    let h = human_limit(limit);
    let program = by_name("gcc").unwrap().program();
    for (label, cfg) in [
        ("ideal", MachineConfig::ideal()),
        ("simple2", MachineConfig::simple2()),
        ("slice2_full", MachineConfig::slice2_full()),
        ("simple4", MachineConfig::simple4()),
        ("slice4_full", MachineConfig::slice4_full()),
    ] {
        geo.push(bench_sim(
            &format!("simulate_gcc_{h}/{label}"),
            limit,
            || simulate(&program, &cfg, limit),
        ));
    }
}

fn bench_workload_diversity(limit: u64, geo: &mut Vec<f64>) {
    let h = human_limit(limit);
    for name in ["mcf", "li", "ijpeg"] {
        let program = by_name(name).unwrap().program();
        geo.push(bench_sim(
            &format!("simulate_slice2_full_{h}/{name}"),
            limit,
            || simulate(&program, &MachineConfig::slice2_full(), limit),
        ));
    }
}

fn bench_characterization(limit: u64) {
    let h = human_limit(limit);
    let program = by_name("twolf").unwrap().program();
    bench(&format!("characterize_twolf_{h}/disambig"), 10, || {
        let mut s = DisambigStudy::new(32);
        drive(&program, limit, &mut [&mut s]).unwrap();
        s.report().loads
    });
    bench(&format!("characterize_twolf_{h}/tagmatch"), 10, || {
        let mut s = TagMatchStudy::new(popk_cache::CacheConfig::l1d_table2());
        drive(&program, limit, &mut [&mut s]).unwrap();
        s.report().accesses
    });
    bench(&format!("characterize_twolf_{h}/branch"), 10, || {
        let mut s = BranchStudy::table2();
        drive(&program, limit, &mut [&mut s]).unwrap();
        s.report().branches
    });
}

fn main() {
    let limit = std::env::args()
        .skip(1)
        .find_map(|a| a.replace('_', "").parse::<u64>().ok())
        .unwrap_or(DEFAULT_LIMIT);
    let mut geo = Vec::new();
    bench_configs(limit, &mut geo);
    bench_workload_diversity(limit, &mut geo);
    bench_characterization(limit);
    // Geomean across the simulation cases, in a stable format the CI
    // bench smoke greps (`simulate geomean  <value> Minsts/s`).
    let geomean = (geo.iter().map(|m| m.ln()).sum::<f64>() / geo.len() as f64).exp();
    println!(
        "{:<44} {:>10.2} Minsts/s",
        format!("simulate geomean ({} cases)", geo.len()),
        geomean
    );
}
