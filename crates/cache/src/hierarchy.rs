//! The two-level hierarchy of Table 2.

use crate::config::CacheConfig;
use crate::set_assoc::{Cache, PartialOutcome};

/// Latencies and geometries for the full memory system.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// L2 hit latency in cycles (added to the L1 latency on an L1 miss).
    pub l2_latency: u32,
    /// Main-memory latency in cycles (added on an L2 miss).
    pub mem_latency: u32,
}

impl Default for HierarchyConfig {
    /// Table 2: L1I 64KB/2-way, L1D 64KB/4-way (1 cycle), L2 1MB/4-way
    /// (6 cycles), memory 100 cycles.
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::l1i_table2(),
            l1d: CacheConfig::l1d_table2(),
            l2: CacheConfig::l2_table2(),
            l1_latency: 1,
            l2_latency: 6,
            mem_latency: 100,
        }
    }
}

/// Outcome of a hierarchy access.
#[derive(Clone, Copy, Debug)]
pub struct MemAccess {
    /// Hit in the first-level cache?
    pub l1_hit: bool,
    /// Hit anywhere before main memory?
    pub l2_hit: bool,
    /// Total access latency in cycles.
    pub latency: u32,
}

/// An L1I + L1D + unified-L2 memory system.
///
/// Blocking and write-allocate (stores fill like loads); write-back
/// traffic is not modeled, matching the level of detail the paper reports.
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
}

impl Hierarchy {
    /// Build from a configuration.
    pub fn new(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            cfg,
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
        }
    }

    /// The Table 2 default.
    pub fn table2() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default())
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Immutable view of the L1 D-cache (for partial-tag probes).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Immutable view of the L1 I-cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// Immutable view of the L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Fetch access (instruction side).
    pub fn access_insn(&mut self, addr: u32) -> MemAccess {
        let l1 = self.l1i.access(addr);
        self.finish(l1.hit, addr)
    }

    /// Data access (loads and stores share the port in this model).
    pub fn access_data(&mut self, addr: u32) -> MemAccess {
        let l1 = self.l1d.access(addr);
        self.finish(l1.hit, addr)
    }

    /// Partial-tag probe of the L1 D-cache with `known_bits` low address
    /// bits available. Returns `None` when the index is not yet complete.
    pub fn partial_probe_data(&self, addr: u32, known_bits: u32) -> Option<PartialOutcome> {
        let tag_bits = self.cfg.l1d.partial_tag_bits(known_bits)?;
        Some(self.l1d.partial_probe(addr, tag_bits))
    }

    fn finish(&mut self, l1_hit: bool, addr: u32) -> MemAccess {
        if l1_hit {
            return MemAccess {
                l1_hit: true,
                l2_hit: true,
                latency: self.cfg.l1_latency,
            };
        }
        let l2 = self.l2.access(addr);
        if l2.hit {
            MemAccess {
                l1_hit: false,
                l2_hit: true,
                latency: self.cfg.l1_latency + self.cfg.l2_latency,
            }
        } else {
            MemAccess {
                l1_hit: false,
                l2_hit: false,
                latency: self.cfg.l1_latency + self.cfg.l2_latency + self.cfg.mem_latency,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_composition() {
        let mut h = Hierarchy::table2();
        let a = 0x1000_0000;
        let first = h.access_data(a);
        assert!(!first.l1_hit && !first.l2_hit);
        assert_eq!(first.latency, 1 + 6 + 100);
        let second = h.access_data(a);
        assert!(second.l1_hit);
        assert_eq!(second.latency, 1);
    }

    #[test]
    fn l2_catches_l1_conflicts() {
        let mut h = Hierarchy::table2();
        let base = 0x1000_0000u32;
        // Blow out one L1D set (4-way): 5 lines with identical index.
        let stride = 1 << h.config().l1d.tag_start_bit();
        for i in 0..5 {
            h.access_data(base + i * stride);
        }
        // First line was evicted from L1 but still sits in the larger L2.
        let again = h.access_data(base);
        assert!(!again.l1_hit);
        assert!(again.l2_hit);
        assert_eq!(again.latency, 1 + 6);
    }

    #[test]
    fn insn_and_data_are_separate_l1s() {
        let mut h = Hierarchy::table2();
        let a = 0x0040_0000;
        h.access_insn(a);
        let d = h.access_data(a);
        assert!(!d.l1_hit, "I and D caches must not alias");
        assert!(d.l2_hit, "but the unified L2 is shared");
    }

    #[test]
    fn partial_probe_gating() {
        let mut h = Hierarchy::table2();
        let a = 0x1000_0040;
        h.access_data(a);
        // Index needs 14 bits; 13 known → no probe possible yet.
        assert!(h.partial_probe_data(a, 13).is_none());
        assert!(h.partial_probe_data(a, 16).is_some());
    }
}
