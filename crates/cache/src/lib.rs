//! # popk-cache — cache substrate with partial tag matching
//!
//! Set-associative caches with true-LRU replacement, plus the *partial tag
//! matching* mechanism of the paper's §5.2/Fig. 3: once the low 16 bits of
//! an effective address are known, the cache index is complete and a few
//! low-order tag bits are available; probing with those partial tags either
//! rules out every way (an early, non-speculative miss), identifies a
//! unique candidate, or leaves several candidates for an MRU way-predictor
//! to choose among.
//!
//! * [`CacheConfig`] / [`Cache`] — one level of set-associative cache.
//! * [`Cache::partial_probe`] — the Fig. 4 classification for a probe with
//!   `t` known tag bits.
//! * [`Hierarchy`] — L1I/L1D/L2/memory with the Table 2 latencies.
//!
//! ```
//! use popk_cache::{Cache, CacheConfig};
//!
//! // The paper's L1 D-cache: 64 KB, 4-way, 64 B lines.
//! let mut c = Cache::new(CacheConfig::new(64 * 1024, 64, 4));
//! assert!(!c.access(0x1000_0040).hit);  // cold miss
//! assert!(c.access(0x1000_0040).hit);   // now resident
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod hierarchy;
mod set_assoc;

pub use config::CacheConfig;
pub use hierarchy::{Hierarchy, HierarchyConfig, MemAccess};
pub use set_assoc::{AccessResult, Cache, CacheStats, PartialOutcome};
