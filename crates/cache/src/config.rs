//! Cache geometry.

/// Geometry of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line (block) size in bytes.
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// Construct and validate a geometry.
    ///
    /// # Panics
    /// Panics if any parameter is zero or not a power of two, or if the
    /// capacity is not divisible into `ways` ways of whole lines.
    pub fn new(size_bytes: u32, line_bytes: u32, ways: u32) -> CacheConfig {
        assert!(size_bytes.is_power_of_two() && size_bytes > 0);
        assert!(line_bytes.is_power_of_two() && line_bytes > 0);
        assert!(ways.is_power_of_two() && ways > 0);
        assert!(size_bytes >= line_bytes * ways, "fewer than one set");
        CacheConfig {
            size_bytes,
            line_bytes,
            ways,
        }
    }

    /// The paper's L1 D-cache: 64 KB, 4-way, 64 B lines.
    pub fn l1d_table2() -> CacheConfig {
        CacheConfig::new(64 * 1024, 64, 4)
    }

    /// The paper's L1 I-cache: 64 KB, 2-way, 64 B lines.
    pub fn l1i_table2() -> CacheConfig {
        CacheConfig::new(64 * 1024, 64, 2)
    }

    /// The paper's unified L2: 1 MB, 4-way, 64 B lines.
    pub fn l2_table2() -> CacheConfig {
        CacheConfig::new(1024 * 1024, 64, 4)
    }

    /// The small configuration of Fig. 4's right column: 8 KB, 32 B lines.
    pub fn small_8k(ways: u32) -> CacheConfig {
        CacheConfig::new(8 * 1024, 32, ways)
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u32 {
        // All three factors are validated powers of two: divide by
        // subtracting exponents (this sits on the per-access index path).
        1 << (self.size_bytes.trailing_zeros()
            - self.line_bytes.trailing_zeros()
            - self.ways.trailing_zeros())
    }

    /// Bits of block offset.
    #[inline]
    pub fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Bits of set index.
    #[inline]
    pub fn index_bits(&self) -> u32 {
        self.sets().trailing_zeros()
    }

    /// Bits of tag.
    #[inline]
    pub fn tag_bits(&self) -> u32 {
        32 - self.offset_bits() - self.index_bits()
    }

    /// First address bit of the tag field (== offset + index bits). The
    /// paper's Fig. 4 x-axis starts here: "as associativity grows, the tag
    /// bits start earlier in the address".
    #[inline]
    pub fn tag_start_bit(&self) -> u32 {
        self.offset_bits() + self.index_bits()
    }

    /// Set index of `addr`.
    #[inline]
    pub fn set_of(&self, addr: u32) -> u32 {
        (addr >> self.offset_bits()) & (self.sets() - 1)
    }

    /// Tag of `addr`.
    #[inline]
    pub fn tag_of(&self, addr: u32) -> u32 {
        addr >> self.tag_start_bit()
    }

    /// Given `known_bits` low-order address bits (e.g. 16 after the first
    /// agen slice of a slice-by-2 machine), how many *tag* bits are
    /// available? `None` if the set index is not yet complete.
    #[inline]
    pub fn partial_tag_bits(&self, known_bits: u32) -> Option<u32> {
        let start = self.tag_start_bit();
        (known_bits >= start).then(|| (known_bits - start).min(self.tag_bits()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_geometries() {
        let l1d = CacheConfig::l1d_table2();
        assert_eq!(l1d.sets(), 256);
        assert_eq!(l1d.offset_bits(), 6);
        assert_eq!(l1d.index_bits(), 8);
        assert_eq!(l1d.tag_start_bit(), 14);
        assert_eq!(l1d.tag_bits(), 18);
        // Paper §7.1: with 16 address bits known, the 64KB 4-way cache has
        // "only two bits beyond the index" for the partial tag match.
        assert_eq!(l1d.partial_tag_bits(16), Some(2));

        let small = CacheConfig::small_8k(8);
        assert_eq!(small.sets(), 32);
        assert_eq!(small.tag_start_bit(), 10);
        assert_eq!(small.partial_tag_bits(16), Some(6));
    }

    #[test]
    fn index_and_tag_extraction() {
        let c = CacheConfig::new(1024, 16, 2); // 32 sets, offset 4, index 5
        assert_eq!(c.set_of(0x0000_0123), (0x123 >> 4) & 31);
        assert_eq!(c.tag_of(0x0000_0123), 0x123 >> 9);
        assert_eq!(c.partial_tag_bits(8), None); // index incomplete
        assert_eq!(c.partial_tag_bits(9), Some(0));
        assert_eq!(c.partial_tag_bits(32), Some(c.tag_bits()));
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let _ = CacheConfig::new(3000, 64, 4);
    }
}
