//! One level of set-associative cache with LRU replacement, MRU way
//! prediction, and partial tag matching.

use crate::config::CacheConfig;

/// Hit/miss statistics for one cache.
#[derive(Clone, Copy, Default, Debug)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
}

impl CacheStats {
    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in `[0, 1]` (1.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 1.0;
        }
        self.hits as f64 / self.accesses as f64
    }
}

/// Result of a full (conventional) access.
#[derive(Clone, Copy, Debug)]
pub struct AccessResult {
    /// Whether the line was resident.
    pub hit: bool,
    /// Way that now holds the line.
    pub way: u32,
}

/// Classification of a partial-tag probe — the four cases of the paper's
/// Fig. 4 plus the way-prediction detail used by the timing model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartialOutcome {
    /// No way matches the known tag bits: the access is a provable miss
    /// before the full address exists ("zero entries match").
    ZeroMatch,
    /// Exactly one way matches the partial tag, and the full tag will
    /// confirm it ("single entry - hit").
    SingleHit {
        /// The matching way.
        way: u32,
    },
    /// Exactly one way matches the partial tag, but the full tag will
    /// refute it — a miss discovered only at verification
    /// ("single entry - miss").
    SingleMiss,
    /// Several ways match the partial tag; a way predictor must choose
    /// ("mult match").
    MultiMatch {
        /// The way the MRU policy would select.
        mru_way: u32,
        /// Whether that selection is the way that actually hits.
        mru_correct: bool,
    },
}

/// A set-associative cache.
///
/// Tracks only tags (this is a timing structure, not a data store — the
/// emulator owns the actual bytes).
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set * ways + way]`; `None` = invalid.
    tags: Vec<Option<u32>>,
    /// Recency ranks (0 = MRU), same layout.
    lru: Vec<u8>,
    stats: CacheStats,
}

impl Cache {
    /// An empty cache with geometry `cfg`.
    pub fn new(cfg: CacheConfig) -> Cache {
        let n = (cfg.sets() * cfg.ways) as usize;
        let lru = (0..n).map(|i| (i as u32 % cfg.ways) as u8).collect();
        Cache {
            cfg,
            tags: vec![None; n],
            lru,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn base(&self, set: u32) -> usize {
        (set * self.cfg.ways) as usize
    }

    /// Non-updating residency check.
    pub fn probe(&self, addr: u32) -> bool {
        let set = self.cfg.set_of(addr);
        let tag = self.cfg.tag_of(addr);
        let base = self.base(set);
        self.tags[base..base + self.cfg.ways as usize].contains(&Some(tag))
    }

    /// Conventional access: looks up `addr`, fills on miss (evicting LRU),
    /// updates recency and stats.
    pub fn access(&mut self, addr: u32) -> AccessResult {
        let set = self.cfg.set_of(addr);
        let tag = self.cfg.tag_of(addr);
        let base = self.base(set);
        let ways = self.cfg.ways as usize;
        self.stats.accesses += 1;

        for w in 0..ways {
            if self.tags[base + w] == Some(tag) {
                self.stats.hits += 1;
                self.touch(base, w);
                return AccessResult {
                    hit: true,
                    way: w as u32,
                };
            }
        }
        // Miss: fill an invalid way, else evict LRU.
        let victim = (0..ways)
            .find(|&w| self.tags[base + w].is_none())
            .unwrap_or_else(|| {
                (0..ways)
                    .max_by_key(|&w| self.lru[base + w])
                    .expect("a set has at least one way")
            });
        self.tags[base + victim] = Some(tag);
        self.touch(base, victim);
        AccessResult {
            hit: false,
            way: victim as u32,
        }
    }

    /// The MRU way of the set containing `addr` (the way-predictor's
    /// default choice).
    pub fn mru_way(&self, addr: u32) -> u32 {
        let base = self.base(self.cfg.set_of(addr));
        (0..self.cfg.ways as usize)
            .min_by_key(|&w| self.lru[base + w])
            .expect("a set has at least one way") as u32
    }

    /// Probe with only the low `tag_bits_known` bits of the tag available
    /// (the set index must already be complete — the caller guarantees
    /// this via [`CacheConfig::partial_tag_bits`]).
    ///
    /// Classifies the probe per Fig. 4. Does **not** update recency or
    /// stats — a partial probe is a peek that precedes the verifying full
    /// access.
    pub fn partial_probe(&self, addr: u32, tag_bits_known: u32) -> PartialOutcome {
        let set = self.cfg.set_of(addr);
        let full_tag = self.cfg.tag_of(addr);
        let mask = if tag_bits_known >= 32 {
            u32::MAX
        } else {
            (1u32 << tag_bits_known) - 1
        };
        let base = self.base(set);
        let ways = self.cfg.ways as usize;

        let mut matches: [u32; 64] = [0; 64];
        let mut n = 0usize;
        for w in 0..ways {
            if let Some(t) = self.tags[base + w] {
                if (t ^ full_tag) & mask == 0 {
                    matches[n] = w as u32;
                    n += 1;
                }
            }
        }
        match n {
            0 => PartialOutcome::ZeroMatch,
            1 => {
                let w = matches[0];
                if self.tags[base + w as usize] == Some(full_tag) {
                    PartialOutcome::SingleHit { way: w }
                } else {
                    PartialOutcome::SingleMiss
                }
            }
            _ => {
                // MRU among the partial matchers.
                let mru_way = matches[..n]
                    .iter()
                    .copied()
                    .min_by_key(|&w| self.lru[base + w as usize])
                    .expect("multi-match has at least two ways");
                let hit_way = (0..ways).find(|&w| self.tags[base + w] == Some(full_tag));
                let mru_correct = hit_way == Some(mru_way as usize);
                PartialOutcome::MultiMatch {
                    mru_way,
                    mru_correct,
                }
            }
        }
    }

    fn touch(&mut self, base: usize, way: usize) {
        let old = self.lru[base + way];
        for w in 0..self.cfg.ways as usize {
            if self.lru[base + w] < old {
                self.lru[base + w] += 1;
            }
        }
        self.lru[base + way] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 16B lines = 128 B.
        Cache::new(CacheConfig::new(128, 16, 2))
    }

    #[test]
    fn fill_hit_evict() {
        let mut c = tiny();
        let a = 0x0000_0000;
        let b = 0x0000_0040; // same set (4 sets × 16B ⇒ set stride 64)
        let d = 0x0000_0080; // same set again
        assert!(!c.access(a).hit);
        assert!(c.access(a).hit);
        assert!(!c.access(b).hit);
        assert!(c.probe(a) && c.probe(b));
        // Third distinct line in a 2-way set evicts LRU (a).
        assert!(!c.access(d).hit);
        assert!(!c.probe(a));
        assert!(c.probe(b) && c.probe(d));
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn mru_tracking() {
        let mut c = tiny();
        let a = 0x0000_0000;
        let b = 0x0000_0040;
        let wa = c.access(a).way;
        let wb = c.access(b).way;
        assert_eq!(c.mru_way(a), wb);
        c.access(a);
        assert_eq!(c.mru_way(a), wa);
    }

    #[test]
    fn partial_probe_categories() {
        // 64KB 4-way 64B (Table 2 L1D): tag starts at bit 14.
        let mut c = Cache::new(CacheConfig::l1d_table2());
        let cfg = *c.config();
        let set_stride = 1 << cfg.tag_start_bit(); // addresses differing only in tag

        let a = 0x1000_0000;
        let b = a + set_stride; // same set, tag differs in bit 0 of tag
        let d = a + 2 * set_stride; // tag differs in bit 1
        c.access(a);
        c.access(b);
        c.access(d);

        // Probe for a line that is resident and unique in its low tag bits.
        match c.partial_probe(a, 2) {
            PartialOutcome::SingleHit { .. } => {}
            other => panic!("expected SingleHit, got {other:?}"),
        }
        // Probe for a non-resident address whose partial tag matches
        // nothing: 0 tag bits known -> everything resident matches
        // (vacuous mask), so use an empty set instead.
        let empty_set_addr = a + (1 << cfg.offset_bits()); // different set, untouched
        assert_eq!(
            c.partial_probe(empty_set_addr, 2),
            PartialOutcome::ZeroMatch
        );

        // A non-resident address sharing low tag bits with a resident one:
        // tag differs only above the known bits → SingleMiss.
        let ghost = a + 4 * set_stride; // tag bit 2 differs; low 2 bits equal
        match c.partial_probe(ghost, 2) {
            PartialOutcome::SingleMiss => {}
            other => panic!("expected SingleMiss, got {other:?}"),
        }

        // With 0 known tag bits, every resident way matches → MultiMatch,
        // and MRU (most recently touched = d) decides.
        match c.partial_probe(d, 0) {
            PartialOutcome::MultiMatch { mru_correct, .. } => assert!(mru_correct),
            other => panic!("expected MultiMatch, got {other:?}"),
        }
        match c.partial_probe(a, 0) {
            PartialOutcome::MultiMatch { mru_correct, .. } => assert!(!mru_correct),
            other => panic!("expected MultiMatch, got {other:?}"),
        }
    }

    #[test]
    fn partial_probe_full_tag_degenerates_to_exact() {
        let mut c = Cache::new(CacheConfig::l1d_table2());
        let cfg = *c.config();
        let a = 0x2000_0040;
        c.access(a);
        assert_eq!(
            c.partial_probe(a, cfg.tag_bits()),
            PartialOutcome::SingleHit { way: 0 }
        );
        let other = a + (1 << cfg.tag_start_bit());
        assert_eq!(
            c.partial_probe(other, cfg.tag_bits()),
            PartialOutcome::ZeroMatch
        );
    }

    #[test]
    fn partial_probe_does_not_disturb_state() {
        let mut c = tiny();
        c.access(0);
        let s0 = c.stats().accesses;
        let _ = c.partial_probe(0, 1);
        assert_eq!(c.stats().accesses, s0);
    }
}
