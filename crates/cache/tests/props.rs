//! Property tests for the cache substrate: structural invariants under
//! arbitrary access streams, and consistency between partial and full tag
//! matching.

use popk_cache::{Cache, CacheConfig, PartialOutcome};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (
        prop::sample::select(vec![512u32, 1024, 8192, 65536]),
        prop::sample::select(vec![16u32, 32, 64]),
        prop::sample::select(vec![1u32, 2, 4, 8]),
    )
        .prop_filter_map("geometry must hold at least one set", |(size, line, ways)| {
            (size >= line * ways).then(|| CacheConfig::new(size, line, ways))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Immediately after an access, the address is resident.
    #[test]
    fn access_makes_resident(
        cfg in arb_config(),
        addrs in prop::collection::vec(any::<u32>(), 1..200),
    ) {
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.probe(a), "{a:#x} must be resident after access");
        }
    }

    /// Hits + misses account for every access; re-access of the most
    /// recent address always hits.
    #[test]
    fn stats_are_consistent(
        cfg in arb_config(),
        addrs in prop::collection::vec(any::<u32>(), 1..200),
    ) {
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
            let r = c.access(a);
            prop_assert!(r.hit);
        }
        let s = *c.stats();
        prop_assert_eq!(s.accesses, 2 * addrs.len() as u64);
        prop_assert!(s.hits >= addrs.len() as u64);
        prop_assert_eq!(s.misses(), s.accesses - s.hits);
    }

    /// A partial probe with the full tag width agrees exactly with probe():
    /// SingleHit iff resident, and never ambiguous.
    #[test]
    fn full_width_partial_probe_is_exact(
        cfg in arb_config(),
        warm in prop::collection::vec(any::<u32>(), 1..100),
        query in any::<u32>(),
    ) {
        let mut c = Cache::new(cfg);
        for &a in &warm {
            c.access(a);
        }
        let outcome = c.partial_probe(query, cfg.tag_bits());
        match outcome {
            PartialOutcome::SingleHit { .. } => prop_assert!(c.probe(query)),
            PartialOutcome::ZeroMatch | PartialOutcome::SingleMiss => {
                prop_assert!(!c.probe(query))
            }
            PartialOutcome::MultiMatch { .. } => {
                prop_assert!(false, "full-width probes cannot be ambiguous")
            }
        }
    }

    /// Monotonicity: a ZeroMatch at t known tag bits stays ZeroMatch for
    /// every larger t (more bits can only rule out more), and a resident
    /// line is never classified as a miss at any width.
    #[test]
    fn partial_probe_monotone(
        cfg in arb_config(),
        warm in prop::collection::vec(any::<u32>(), 1..100),
        query in any::<u32>(),
    ) {
        let mut c = Cache::new(cfg);
        for &a in &warm {
            c.access(a);
        }
        let resident = c.probe(query);
        let mut seen_zero = false;
        for t in 0..=cfg.tag_bits() {
            let o = c.partial_probe(query, t);
            if seen_zero {
                prop_assert_eq!(o, PartialOutcome::ZeroMatch, "t={}", t);
            }
            match o {
                PartialOutcome::ZeroMatch => {
                    prop_assert!(!resident);
                    seen_zero = true;
                }
                PartialOutcome::SingleMiss => prop_assert!(!resident),
                PartialOutcome::SingleHit { .. } => prop_assert!(resident),
                PartialOutcome::MultiMatch { mru_correct, .. } => {
                    if mru_correct {
                        prop_assert!(resident);
                    }
                }
            }
        }
    }

    /// The MRU way always names a valid way, and after an access it names
    /// the way that access touched.
    #[test]
    fn mru_tracks_last_touch(
        cfg in arb_config(),
        addrs in prop::collection::vec(any::<u32>(), 1..100),
    ) {
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            let r = c.access(a);
            prop_assert!(r.way < cfg.ways);
            prop_assert_eq!(c.mru_way(a), r.way);
        }
    }
}
