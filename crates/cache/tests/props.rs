//! Property tests for the cache substrate: structural invariants under
//! arbitrary access streams, and consistency between partial and full tag
//! matching. Inputs come from the workspace's deterministic [`SplitMix64`]
//! stream so failures reproduce exactly.

use popk_cache::{Cache, CacheConfig, PartialOutcome};
use popk_isa::rng::SplitMix64;

const SIZES: [u32; 4] = [512, 1024, 8192, 65536];
const LINES: [u32; 3] = [16, 32, 64];
const WAYS: [u32; 4] = [1, 2, 4, 8];

/// Every geometry in the test lattice that holds at least one set.
fn configs() -> Vec<CacheConfig> {
    let mut out = Vec::new();
    for size in SIZES {
        for line in LINES {
            for ways in WAYS {
                if size >= line * ways {
                    out.push(CacheConfig::new(size, line, ways));
                }
            }
        }
    }
    out
}

/// An address stream biased toward set/tag collisions (small strides around
/// a shared base) mixed with raw random words.
fn addr_stream(rng: &mut SplitMix64, n: usize) -> Vec<u32> {
    let base = rng.next_u32() & 0xfff0_0000;
    (0..n)
        .map(|i| match i % 3 {
            0 => base + (rng.below(64) << 6),
            1 => base + (rng.below(1 << 12) << 4),
            _ => rng.next_u32(),
        })
        .collect()
}

/// Immediately after an access, the address is resident.
#[test]
fn access_makes_resident() {
    let mut rng = SplitMix64::new(0xace5);
    for cfg in configs() {
        let mut c = Cache::new(cfg);
        for &a in &addr_stream(&mut rng, 200) {
            c.access(a);
            assert!(c.probe(a), "{a:#x} must be resident after access ({cfg:?})");
        }
    }
}

/// Hits + misses account for every access; re-access of the most recent
/// address always hits.
#[test]
fn stats_are_consistent() {
    let mut rng = SplitMix64::new(0x57a7);
    for cfg in configs() {
        let addrs = addr_stream(&mut rng, 200);
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
            let r = c.access(a);
            assert!(r.hit);
        }
        let s = *c.stats();
        assert_eq!(s.accesses, 2 * addrs.len() as u64);
        assert!(s.hits >= addrs.len() as u64);
        assert_eq!(s.misses(), s.accesses - s.hits);
    }
}

/// A partial probe with the full tag width agrees exactly with probe():
/// SingleHit iff resident, and never ambiguous.
#[test]
fn full_width_partial_probe_is_exact() {
    let mut rng = SplitMix64::new(0xf011);
    for cfg in configs() {
        let mut c = Cache::new(cfg);
        for &a in &addr_stream(&mut rng, 100) {
            c.access(a);
        }
        for _ in 0..32 {
            let query = rng.next_u32();
            match c.partial_probe(query, cfg.tag_bits()) {
                PartialOutcome::SingleHit { .. } => assert!(c.probe(query)),
                PartialOutcome::ZeroMatch | PartialOutcome::SingleMiss => {
                    assert!(!c.probe(query))
                }
                PartialOutcome::MultiMatch { .. } => {
                    panic!("full-width probes cannot be ambiguous ({cfg:?})")
                }
            }
        }
    }
}

/// Monotonicity: a ZeroMatch at t known tag bits stays ZeroMatch for every
/// larger t (more bits can only rule out more), and a resident line is
/// never classified as a miss at any width.
#[test]
fn partial_probe_monotone() {
    let mut rng = SplitMix64::new(0x3010);
    for cfg in configs() {
        let addrs = addr_stream(&mut rng, 100);
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
        }
        // Mix resident and random queries.
        for q in 0..16 {
            let query = if q % 2 == 0 {
                addrs[q * 3 % addrs.len()]
            } else {
                rng.next_u32()
            };
            let resident = c.probe(query);
            let mut seen_zero = false;
            for t in 0..=cfg.tag_bits() {
                let o = c.partial_probe(query, t);
                if seen_zero {
                    assert_eq!(o, PartialOutcome::ZeroMatch, "t={t} ({cfg:?})");
                }
                match o {
                    PartialOutcome::ZeroMatch => {
                        assert!(!resident);
                        seen_zero = true;
                    }
                    PartialOutcome::SingleMiss => assert!(!resident),
                    PartialOutcome::SingleHit { .. } => assert!(resident),
                    PartialOutcome::MultiMatch { mru_correct, .. } => {
                        if mru_correct {
                            assert!(resident);
                        }
                    }
                }
            }
        }
    }
}

/// The MRU way always names a valid way, and after an access it names the
/// way that access touched.
#[test]
fn mru_tracks_last_touch() {
    let mut rng = SplitMix64::new(0x3141);
    for cfg in configs() {
        let mut c = Cache::new(cfg);
        for &a in &addr_stream(&mut rng, 100) {
            let r = c.access(a);
            assert!(r.way < cfg.ways);
            assert_eq!(c.mru_way(a), r.way);
        }
    }
}

/// A ZeroMatch at *any* known-bit width is a sound early-miss declaration:
/// the subsequent full-tag access must miss. This is the property the
/// timing model's partial-tag early-miss optimization relies on (Fig. 4:
/// "zero entries match" ⇒ begin the miss before the full address exists).
#[test]
fn zero_match_implies_full_tag_miss() {
    let mut rng = SplitMix64::new(0x02e0);
    let mut zero_matches = 0u64;
    for cfg in configs() {
        let addrs = addr_stream(&mut rng, 150);
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
        }
        for q in 0..48 {
            let query = if q % 3 == 0 {
                addrs[q % addrs.len()] ^ (1 << (14 + q % 16))
            } else {
                rng.next_u32()
            };
            for t in [1, 2, 4, 8, cfg.tag_bits()] {
                if c.partial_probe(query, t) == PartialOutcome::ZeroMatch {
                    zero_matches += 1;
                    assert!(
                        !c.probe(query),
                        "ZeroMatch at {t} known bits but {query:#x} is resident ({cfg:?})"
                    );
                    let r = c.access(query);
                    assert!(!r.hit, "ZeroMatch at {t} bits must precede a full miss");
                    break; // the access above mutated the set; requery
                }
            }
        }
    }
    assert!(
        zero_matches > 100,
        "stream never exercised ZeroMatch ({zero_matches})"
    );
}

/// Way-prediction verification is exact: when a MultiMatch selects the MRU
/// way, the full-tag verification passes iff that way truly holds the
/// line. It never passes on a wrong way (no false hits), and it never
/// rejects the right way (no false replays).
#[test]
fn way_prediction_verification_never_passes_wrong_way() {
    let mut rng = SplitMix64::new(0x3a1f);
    let mut multi = 0u64;
    for cfg in configs().into_iter().filter(|c| c.ways > 1) {
        let addrs = addr_stream(&mut rng, 150);
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
        }
        for q in 0..64 {
            let query = if q % 2 == 0 {
                addrs[q % addrs.len()]
            } else {
                rng.next_u32()
            };
            // Few known bits makes multi-way ambiguity likely.
            let t = rng.below(3);
            if let PartialOutcome::MultiMatch {
                mru_way,
                mru_correct,
            } = c.partial_probe(query, t)
            {
                multi += 1;
                // Ground truth: which way (if any) holds the full tag?
                // access() reports the hit way without relocating lines.
                let r = c.access(query);
                let true_way = r.hit.then_some(r.way);
                assert_eq!(
                    mru_correct,
                    true_way == Some(mru_way),
                    "verification outcome must match ground truth \
                     (mru_way {mru_way}, true way {true_way:?}, {cfg:?})"
                );
            }
        }
    }
    assert!(multi > 100, "stream never exercised MultiMatch ({multi})");
}
