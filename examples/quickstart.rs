//! Quickstart: assemble a tiny program, run it functionally, then compare
//! the ideal, naively-pipelined and bit-sliced machines on it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use popk_core::{simulate, MachineConfig};
use popk_emu::Machine;
use popk_isa::asm;

fn main() {
    // A little kernel: sum an array, with a data-dependent branch.
    let program = asm::assemble(
        r#"
        .data
        table:  .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
        .text
        main:
            la   r16, table
            li   r17, 0          # sum
            li   r18, 0          # count of odd entries
            li   r8, 200         # outer trips (warms caches/predictors)
        outer:
            li   r9, 16          # elements
            la   r16, table
        loop:
            lw   r10, 0(r16)
            addu r17, r17, r10
            andi r11, r10, 1
            beq  r11, r0, even
            addiu r18, r18, 1
        even:
            addiu r16, r16, 4
            addiu r9, r9, -1
            bgtz r9, loop
            addiu r8, r8, -1
            bgtz r8, outer
            move r4, r17
            li   r2, 1
            syscall              # print the sum
            move r4, r18
            syscall              # print the odd count
            li   r2, 0
            syscall
        "#,
    )
    .expect("assembly");

    // 1. Functional execution.
    let mut machine = Machine::new(&program);
    machine.run(10_000_000).expect("clean run");
    println!(
        "functional result: sum = {}, odd entries = {}",
        machine.output_ints()[0],
        machine.output_ints()[1]
    );

    // 2. Timing: the three Fig. 10 machines at the same clock.
    println!("\n{:<28} {:>8} {:>8}", "configuration", "cycles", "IPC");
    for (label, cfg) in [
        ("ideal (1-cycle EX)", MachineConfig::ideal()),
        ("simple 2-deep EX pipeline", MachineConfig::simple2()),
        (
            "bit-sliced x2, all techniques",
            MachineConfig::slice2_full(),
        ),
        ("simple 4-deep EX pipeline", MachineConfig::simple4()),
        (
            "bit-sliced x4, all techniques",
            MachineConfig::slice4_full(),
        ),
    ] {
        let stats = simulate(&program, &cfg, 1_000_000);
        println!("{label:<28} {:>8} {:>8.3}", stats.cycles, stats.ipc());
    }
    println!(
        "\nThe bit-sliced machines recover most of the IPC the naive EX\n\
         pipelines lose — the paper's headline result, on your own program."
    );
}
