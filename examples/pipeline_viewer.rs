//! Pipeline viewer: a SimpleScalar-style pipetrace of the bit-sliced
//! machine, showing slices issuing on successive cycles and the partial
//! techniques firing.
//!
//! ```text
//! cargo run --release --example pipeline_viewer [workload] [config]
//! # config: ideal | simple2 | simple4 | slice2 | slice4
//! ```
//!
//! Legend: `F` fetch, `D` dispatch, digit k = issue of slice k, `o`
//! result slice ready, `m`/`M` memory access start / data back, `!`
//! branch resolution, `C` commit.

use popk_core::{render_chart, render_table, MachineConfig, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("gcc");
    let cfg = match args.get(2).map(String::as_str).unwrap_or("slice2") {
        "ideal" => MachineConfig::ideal(),
        "simple2" => MachineConfig::simple2(),
        "simple4" => MachineConfig::simple4(),
        "slice4" => MachineConfig::slice4_full(),
        _ => MachineConfig::slice2_full(),
    };
    let program = popk_workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
        .program();

    // Warm past the startup stanza, then record a window of instructions.
    let mut sim = Simulator::new(&cfg);
    let (stats, timings) = sim.run_timeline(&program, 2_000, 48);
    // Show the middle of the recorded window (steady-ish state).
    let slice = &timings[timings.len().saturating_sub(24)..];

    println!(
        "{name} on {} — IPC {:.3} over {} cycles\n",
        cfg.label(),
        stats.ipc(),
        stats.cycles
    );
    println!("{}", render_table(slice));
    println!("{}", render_chart(slice, 100));
    println!(
        "Legend: F fetch, D dispatch, 0-3 slice issue, o slice result,\n\
         m/M memory start/data, ! branch resolution, C commit."
    );
}
