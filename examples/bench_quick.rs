//! Quick best-of-N throughput check for perf work: the shared bench
//! host is noisy, so take the fastest of `reps` runs per case (the
//! least-perturbed sample) and report the geomean.
//!
//! ```sh
//! cargo run --release --example bench_quick [limit] [reps]
//! ```

use popk_core::{simulate, MachineConfig};
use popk_workloads::by_name;

/// Nanoseconds this process has spent on-CPU (`/proc/self/schedstat`
/// field 1) — immune to preemption by other tenants of the host.
fn cpu_ns() -> u64 {
    let s = std::fs::read_to_string("/proc/self/schedstat").expect("schedstat");
    s.split_whitespace().next().unwrap().parse().unwrap()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let limit: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let reps: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    let cases: Vec<(String, &str, MachineConfig)> = vec![
        ("gcc/ideal".into(), "gcc", MachineConfig::ideal()),
        ("gcc/simple2".into(), "gcc", MachineConfig::simple2()),
        (
            "gcc/slice2_full".into(),
            "gcc",
            MachineConfig::slice2_full(),
        ),
        ("gcc/simple4".into(), "gcc", MachineConfig::simple4()),
        (
            "gcc/slice4_full".into(),
            "gcc",
            MachineConfig::slice4_full(),
        ),
        (
            "mcf/slice2_full".into(),
            "mcf",
            MachineConfig::slice2_full(),
        ),
        ("li/slice2_full".into(), "li", MachineConfig::slice2_full()),
        (
            "ijpeg/slice2_full".into(),
            "ijpeg",
            MachineConfig::slice2_full(),
        ),
    ];
    let mut log_sum = 0.0f64;
    for (label, name, cfg) in &cases {
        let program = by_name(name).unwrap().program();
        let mut best = u64::MAX;
        let mut committed = 0;
        for _ in 0..reps {
            let t = cpu_ns();
            committed = simulate(&program, cfg, limit).committed;
            best = best.min(cpu_ns() - t);
        }
        let minsts = committed as f64 / (best as f64 / 1e9) / 1e6;
        log_sum += minsts.ln();
        println!("{label:22} {minsts:6.2} Minsts/s");
    }
    println!(
        "geomean                {:6.2} Minsts/s",
        (log_sum / cases.len() as f64).exp()
    );
}
