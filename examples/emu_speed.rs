//! Raw trace-generation throughput floor.
use std::time::Instant;
fn main() {
    for name in ["gcc", "mcf", "li", "ijpeg"] {
        let program = popk_workloads::by_name(name).unwrap().program();
        let mut best = f64::MAX;
        for _ in 0..3 {
            let mut machine = popk_emu::Machine::new(&program);
            let t = Instant::now();
            let mut n = 0u64;
            let mut sink = 0u32;
            for r in machine.trace(200_000) {
                let r = r.unwrap();
                sink ^= r.pc ^ r.results[0];
                n += 1;
            }
            let dt = t.elapsed().as_secs_f64();
            std::hint::black_box(sink);
            best = best.min(dt / n as f64 * 1e9);
        }
        println!("{name}: {best:.1} ns/inst ({:.1} Minsts/s)", 1000.0 / best);
    }
}
