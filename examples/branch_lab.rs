//! Branch lab: watch early branch resolution work on the paper's Fig. 5
//! idiom.
//!
//! Builds three small kernels whose mispredictions differ in how many
//! low-order bits prove them, and measures the slice-by-4 machine with
//! and without early branch resolution. The `lbu / andi / bne` kernel is
//! Fig. 5's li snippet verbatim: every misprediction is provable from
//! bit 0, so the redirect fires after the first 8-bit slice instead of
//! the fourth.
//!
//! ```text
//! cargo run --release --example branch_lab
//! ```

use popk_core::{simulate, MachineConfig, Optimizations};
use popk_isa::asm;

fn kernel(body: &str) -> popk_isa::Program {
    // A data buffer of pseudo-random bytes drives the data-dependent
    // branches; the harness wraps `body` in a byte-scanning loop.
    let mut data = String::from(".data\nbuf: .byte ");
    let mut x: u32 = 0x2545_f491;
    for i in 0..256 {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        data.push_str(&format!(
            "{}{}",
            x & 0xff,
            if i == 255 { "\n" } else { ", " }
        ));
    }
    let src = format!(
        r#"
        {data}
        .text
        main:
            la  r16, buf
            li  r8, 4000          # total trips
        loop:
            andi r9, r8, 255      # cursor in the byte buffer
            addu r9, r9, r16
            {body}
        next:
            addiu r8, r8, -1
            bgtz r8, loop
            li r2, 0
            syscall
        "#
    );
    asm::assemble(&src).expect("assembly")
}

fn main() {
    let cases = [
        (
            "Fig. 5 idiom (bit 0 decides)",
            // lbu/andi/bne on the low bit: mispredicts provable at bit 0.
            "lbu r10, 0(r9)\n            andi r11, r10, 1\n            bne r11, r0, next",
        ),
        (
            "high-byte test (bit 24+ decides)",
            // The tested bit lives in the top slice: no early resolution.
            "lbu r10, 0(r9)\n            sll r11, r10, 24\n            bne r11, r0, next",
        ),
        (
            "sign test (sign bit decides)",
            // bltz: the §5.3 class that must wait for the full result.
            "lbu r10, 0(r9)\n            sll r11, r10, 24\n            bltz r11, next",
        ),
    ];

    println!(
        "{:<36} {:>9} {:>9} {:>8} {:>9}",
        "kernel", "no-early", "early", "gain", "resolves"
    );
    for (label, body) in cases {
        let p = kernel(body);
        let without = simulate(
            &p,
            &MachineConfig::slice4(Optimizations::level(2)),
            1_000_000,
        );
        let with = simulate(
            &p,
            &MachineConfig::slice4(Optimizations::level(3)),
            1_000_000,
        );
        println!(
            "{label:<36} {:>9} {:>9} {:>7.1}% {:>9}",
            without.cycles,
            with.cycles,
            100.0 * (without.cycles as f64 / with.cycles as f64 - 1.0),
            with.early_branch_resolves,
        );
    }
    println!(
        "\nOnly equality-class branches whose deciding bit sits in a low slice\n\
         resolve early; sign-testing branches wait for the top slice (§5.3)."
    );
}
