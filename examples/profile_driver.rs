//! Single-threaded hot-loop driver for external profilers: runs the
//! bench-suite simulation mix back to back so sampled time lands in the
//! simulator, not a harness.
//!
//! ```sh
//! gprofng collect app -o /tmp/popk.er \
//!     ./target/release/examples/profile_driver [limit] [reps]
//! gprofng display text -functions /tmp/popk.er | head -40
//! ```

use popk_core::{simulate, MachineConfig};
use popk_workloads::by_name;

fn main() {
    let mut args = std::env::args().skip(1);
    let limit: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let reps: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let cases: Vec<(&str, MachineConfig)> = vec![
        ("gcc", MachineConfig::ideal()),
        ("gcc", MachineConfig::simple2()),
        ("gcc", MachineConfig::slice2_full()),
        ("gcc", MachineConfig::simple4()),
        ("gcc", MachineConfig::slice4_full()),
        ("mcf", MachineConfig::slice2_full()),
        ("li", MachineConfig::slice2_full()),
        ("ijpeg", MachineConfig::slice2_full()),
    ];
    let mut committed = 0u64;
    for _ in 0..reps {
        for (name, cfg) in &cases {
            let program = by_name(name).unwrap().program();
            committed += simulate(&program, cfg, limit).committed;
        }
    }
    println!("total committed: {committed}");
}
