//! Characterize your own assembly program the way §5 of the paper
//! characterizes SPEC: run the three partial-operand studies over its
//! dynamic trace.
//!
//! ```text
//! cargo run --release --example characterize_asm -- path/to/prog.s [limit]
//! ```
//!
//! With no path, a built-in demo program (a hash-table kernel) is used.

use popk_cache::CacheConfig;
use popk_characterize::{drive, BranchStudy, DisambigStudy, TagCategory, TagMatchStudy};
use popk_isa::asm;

const DEMO: &str = r#"
    .data
    table: .space 4096
    .text
    main:
        la  r16, table
        li  r8, 5000
    loop:
        # A toy hash-table update: hash the counter, load, branch, store.
        sll  r9, r8, 7
        xor  r9, r9, r8
        andi r9, r9, 0x3fc
        addu r9, r9, r16
        lw   r10, 0(r9)
        andi r11, r10, 1
        beq  r11, r0, even
        addiu r10, r10, 3
    even:
        addiu r10, r10, 1
        sw   r10, 0(r9)
        addiu r8, r8, -1
        bgtz r8, loop
        li r2, 0
        syscall
"#;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (program, what) = match args.get(1) {
        Some(path) => {
            let src = std::fs::read_to_string(path).expect("read assembly file");
            (asm::assemble(&src).expect("assemble"), path.clone())
        }
        None => (
            asm::assemble(DEMO).expect("assemble"),
            "<built-in demo>".to_string(),
        ),
    };
    let limit: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(500_000);

    let mut disambig = DisambigStudy::new(32);
    let mut tags = TagMatchStudy::new(CacheConfig::l1d_table2());
    let mut branches = BranchStudy::table2();
    let n = drive(
        &program,
        limit,
        &mut [&mut disambig, &mut tags, &mut branches],
    )
    .expect("emulation");
    println!("characterized {what}: {n} instructions\n");

    let d = disambig.report();
    println!("— load/store disambiguation (Fig. 2 lens) —");
    println!("  loads observed:                  {}", d.loads);
    for bits in [4u32, 9, 16, 30] {
        println!(
            "  resolved after {bits:>2} compared bits: {:>5.1}%",
            d.resolved_after_bits(bits)
        );
    }

    let t = tags.report();
    println!("\n— partial tag matching, 64KB 4-way L1 (Fig. 4 lens) —");
    println!(
        "  accesses {} | hit rate {:.1}%",
        t.accesses,
        100.0 * t.hits as f64 / t.accesses.max(1) as f64
    );
    for tag_bits in [1u32, 2, 4] {
        let p = t.percent_with_tag_bits(tag_bits);
        println!(
            "  {tag_bits} tag bit(s): hit {:>5.1}%  miss {:>5.1}%  early-miss {:>5.1}%  ambiguous {:>5.1}%  (spec acc {:.1}%)",
            p[TagCategory::SingleHit.index()],
            p[TagCategory::SingleMiss.index()],
            p[TagCategory::ZeroMatch.index()],
            p[TagCategory::MultMatch.index()],
            100.0 * t.speculation_accuracy(tag_bits),
        );
    }

    let b = branches.report();
    println!("\n— early branch resolution (Fig. 6 lens) —");
    println!(
        "  branches {} | accuracy {:.1}% | mispredicts {}",
        b.branches,
        100.0 * b.accuracy(),
        b.mispredicts
    );
    if b.mispredicts > 0 {
        for bits in [1u32, 8, 16, 32] {
            println!(
                "  detectable within {bits:>2} bits: {:>5.1}%",
                b.percent_detected_within(bits)
            );
        }
    }
}
