//! Memory-technique demo: what early load-store disambiguation and
//! partial tag matching do for two very different memory behaviours.
//!
//! * `bzip` — store-heavy (MTF table updates): loads constantly queue
//!   behind older stores, so *early disambiguation* is the big win.
//! * `mcf`  — a >L1 pointer chase with almost no stores: disambiguation
//!   has nothing to do, and partial tagging mostly turns misses into
//!   verified way-mispredicts — the paper's mcf gains least, as here.
//!
//! ```text
//! cargo run --release --example pointer_chase [instr_budget]
//! ```

use popk_core::{simulate, MachineConfig, Optimizations};

fn main() {
    let limit: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150_000);

    for name in ["bzip", "mcf"] {
        let program = popk_workloads::by_name(name).unwrap().program();
        println!("== {name} ==  (slice-by-2, {limit} instructions)\n");
        println!(
            "{:<28} {:>9} {:>7} {:>9} {:>7} {:>7} {:>8}",
            "configuration", "cycles", "IPC", "early-dis", "fwd", "ptag", "way-miss"
        );

        let base = Optimizations::level(3); // bypass + ooo + early branch
        let with_dis = Optimizations {
            early_disambig: true,
            ..base
        };
        let with_both = Optimizations {
            partial_tag: true,
            ..with_dis
        };
        let rows: [(&str, MachineConfig); 4] = [
            ("without memory techniques", MachineConfig::slice2(base)),
            ("+ early disambiguation", MachineConfig::slice2(with_dis)),
            ("+ partial tag matching", MachineConfig::slice2(with_both)),
            ("(ideal machine, for scale)", MachineConfig::ideal()),
        ];
        for (label, cfg) in rows {
            let s = simulate(&program, &cfg, limit);
            println!(
                "{label:<28} {:>9} {:>7.3} {:>9} {:>7} {:>7} {:>8}",
                s.cycles,
                s.ipc(),
                s.early_disambig_loads,
                s.store_forwards,
                s.partial_tag_accesses,
                s.way_mispredicts,
            );
        }
        println!();
    }
    println!(
        "Early disambiguation pays where loads sit behind address-unknown\n\
         stores (bzip's table updates); partial tagging pays where the L1\n\
         hits and the index can start a slice early. mcf's serial chase\n\
         through a cache-hostile working set leaves little for either —\n\
         exactly the per-benchmark split of the paper's Fig. 12."
    );
}
