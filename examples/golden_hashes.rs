//! Golden behavior hashes: one FNV-1a 64 digest per (workload ×
//! configuration) over the full cycle-event stream plus the final
//! statistics snapshot.
//!
//! The digest covers every [`popk::core::TraceEvent`] the simulator
//! emits (with its cycle stamp) and the complete `SimStats` /
//! `StatsRegistry` state, so any timing, ordering, or counting change —
//! however small — changes the hash. Refactors that must be
//! behavior-preserving (memory-layout changes, scheduler rewrites)
//! capture this table before and after and diff it:
//!
//! ```text
//! cargo run --release --example golden_hashes > before.txt
//! # ... refactor ...
//! cargo run --release --example golden_hashes > after.txt
//! diff before.txt after.txt
//! ```
//!
//! The PISA suite (11 workloads × 12 configs) prints first, then the
//! RV32 suite (4 workloads × the same 12 configs) through the same
//! digest — both frontends feed the identical timing core, so one table
//! pins both.
//!
//! An optional instruction budget overrides the 40 K default.

use popk::core::hash;
use popk::core::{IsaKind, MachineConfig, Optimizations, Simulator, VecTrace};
use popk::rv32::{Rv32Frontend, Rv32Insn, Rv32Program};
use popk::workloads::all;
use std::fmt::Write as _;

/// The configurations under test: the headline machines, the cumulative
/// optimization ladder, the extended configs, and wrong-path modeling.
fn configs() -> Vec<(String, MachineConfig)> {
    let mut v: Vec<(String, MachineConfig)> = vec![
        ("ideal".into(), MachineConfig::ideal()),
        ("simple2".into(), MachineConfig::simple2()),
        ("simple4".into(), MachineConfig::simple4()),
        (
            "slice2-1".into(),
            MachineConfig::slice2(Optimizations::level(1)),
        ),
        (
            "slice2-3".into(),
            MachineConfig::slice2(Optimizations::level(3)),
        ),
        ("slice2-5".into(), MachineConfig::slice2_full()),
        (
            "slice4-2".into(),
            MachineConfig::slice4(Optimizations::level(2)),
        ),
        (
            "slice4-4".into(),
            MachineConfig::slice4(Optimizations::level(4)),
        ),
        ("slice4-5".into(), MachineConfig::slice4_full()),
        (
            "ext4".into(),
            MachineConfig::slice4(Optimizations::extended()),
        ),
    ];
    let mut wp2 = MachineConfig::slice2_full();
    wp2.model_wrong_path = true;
    v.push(("slice2-wp".into(), wp2));
    let mut md = MachineConfig::slice2(Optimizations::extended());
    md.opts.mem_dep_predict = true;
    v.push(("ext2-md".into(), md));
    v
}

/// Digest one traced run: the event stream, then stats + registry —
/// through the historical golden-table stream (see
/// [`hash::GOLDEN_PRIME`]), so the pinned tables stay valid.
fn digest<I: popk::trace::UopInsn>(sim: &Simulator<VecTrace<I>, I>) -> u64 {
    let mut h = hash::FNV_OFFSET;
    let mut buf = String::new();
    for (cycle, ev) in &sim.sink().events {
        buf.clear();
        let _ = write!(buf, "{cycle} {ev:?}");
        h = hash::golden64_from(h, buf.as_bytes());
    }
    buf.clear();
    let _ = write!(
        buf,
        "{:?} {:?}",
        sim.stats(),
        sim.registry().to_json().to_pretty(0)
    );
    hash::golden64_from(h, buf.as_bytes())
}

fn main() {
    let limit: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.replace('_', "").parse().ok())
        .unwrap_or(40_000);
    let workloads = all();
    let cfgs = configs();
    let jobs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..cfgs.len()).map(move |c| (w, c)))
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let lines: Vec<std::sync::Mutex<String>> = jobs
        .iter()
        .map(|_| std::sync::Mutex::new(String::new()))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(w, c)) = jobs.get(i) else { break };
                let (label, cfg) = &cfgs[c];
                let p = workloads[w].program();
                let mut sim = Simulator::with_sink(cfg, VecTrace::new());
                sim.run(&p, limit);
                *lines[i].lock().unwrap() = format!(
                    "{:<8} {:<10} {:016x}",
                    workloads[w].name,
                    label,
                    digest(&sim)
                );
            });
        }
    });
    for l in lines {
        println!("{}", l.into_inner().unwrap());
    }

    // The RV32 suite, same configs, same digest, second table.
    let rv: Vec<(&'static str, Rv32Program)> = popk::rv32::workloads::all()
        .into_iter()
        .map(|w| (w.name, w.program()))
        .collect();
    let jobs: Vec<(usize, usize)> = (0..rv.len())
        .flat_map(|w| (0..cfgs.len()).map(move |c| (w, c)))
        .collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let lines: Vec<std::sync::Mutex<String>> = jobs
        .iter()
        .map(|_| std::sync::Mutex::new(String::new()))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(w, c)) = jobs.get(i) else { break };
                let (label, cfg) = &cfgs[c];
                let mut cfg = *cfg;
                cfg.isa = IsaKind::Rv32;
                let mut sim: Simulator<VecTrace<Rv32Insn>, Rv32Insn> =
                    Simulator::with_sink(&cfg, VecTrace::new());
                sim.try_run_frontend(Rv32Frontend::new(&rv[w].1, limit))
                    .expect("rv32 golden run must not fault");
                *lines[i].lock().unwrap() =
                    format!("{:<8} {:<10} {:016x}", rv[w].0, label, digest(&sim));
            });
        }
    });
    for l in lines {
        println!("{}", l.into_inner().unwrap());
    }
}
